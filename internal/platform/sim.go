package platform

import (
	"errors"
	"fmt"
	"math"

	"fairtask/internal/assign"
	"fairtask/internal/model"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// SimConfig configures an epoch-based platform simulation.
type SimConfig struct {
	// Epochs is the number of assignment rounds. Default 12.
	Epochs int
	// EpochLength is the simulated duration of one round in hours.
	// Default 1.
	EpochLength float64
	// Solver picks the assignment algorithm. Required.
	Solver assign.Assigner
	// VDPS configures candidate generation per round.
	VDPS vdps.Options
	// Parallelism bounds concurrent per-center solves per round.
	Parallelism int
	// TaskSource, when non-nil, is invoked at the start of each epoch and
	// may append new delivery-point tasks to the problem. Task expiries are
	// absolute simulation hours.
	TaskSource func(epoch int, now float64, p *model.Problem)
}

// EpochStats records one simulated round.
type EpochStats struct {
	// Epoch is the 0-based round index; Now is the simulation clock at the
	// start of the round in hours.
	Epoch int
	Now   float64
	// OnlineWorkers is how many workers were available this round.
	OnlineWorkers int
	// AssignedWorkers is how many of them received a route.
	AssignedWorkers int
	// CompletedTasks is the number of tasks on assigned routes.
	CompletedTasks int
	// ExpiredTasks is the number of tasks dropped this round because their
	// deadline passed unassigned.
	ExpiredTasks int
	// Difference and Average are the round's payoff metrics over online
	// workers.
	Difference float64
	Average    float64
}

// SimReport aggregates a full simulation.
type SimReport struct {
	// Epochs holds per-round statistics.
	Epochs []EpochStats
	// CompletedTasks and ExpiredTasks total the corresponding per-round
	// numbers.
	CompletedTasks int
	ExpiredTasks   int
	// Earnings and TravelTime accumulate per worker (indexed by the order
	// workers appear across the problem's instances).
	Earnings   []float64
	TravelTime []float64
	// CumulativeDifference is P_dif over the workers' cumulative earning
	// rates (earnings / travel time, 0 for idle workers) — the platform's
	// long-run fairness.
	CumulativeDifference float64
	// CumulativeAverage is the mean cumulative earning rate.
	CumulativeAverage float64
}

// ErrNoSolver is returned when SimConfig.Solver is nil.
var ErrNoSolver = errors.New("platform: simulation requires a solver")

// simWorker tracks one worker's lifecycle across epochs.
type simWorker struct {
	worker   model.Worker
	busyTill float64 // simulation hour at which the worker is online again
	earnings float64
	travel   float64
}

// simCenter maps one center to the global worker table.
type simCenter struct {
	centerID int
	workers  []int // indices into the global worker table
}

// Simulate runs an epoch-based simulation of the SC platform over the
// problem: each epoch it snapshots the live tasks and online workers per
// center, solves the one-shot assignment, marks assigned workers busy for
// their route duration, removes completed tasks, and expires stale ones.
func Simulate(p *model.Problem, cfg SimConfig) (*SimReport, error) {
	if cfg.Solver == nil {
		return nil, ErrNoSolver
	}
	if len(p.Instances) == 0 {
		return nil, ErrNoInstances
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 12
	}
	dt := cfg.EpochLength
	if dt <= 0 {
		dt = 1
	}

	// Build the mutable simulation state from a deep copy of the problem.
	var workers []*simWorker
	centers := make([]*simCenter, len(p.Instances))
	live := &model.Problem{Instances: make([]model.Instance, len(p.Instances))}
	for i := range p.Instances {
		src := &p.Instances[i]
		live.Instances[i] = *src
		live.Instances[i].Points = clonePoints(src.Points)
		sc := &simCenter{centerID: src.CenterID}
		for _, w := range src.Workers {
			sc.workers = append(sc.workers, len(workers))
			workers = append(workers, &simWorker{worker: w})
		}
		centers[i] = sc
	}

	report := &SimReport{}
	for epoch := 0; epoch < epochs; epoch++ {
		now := float64(epoch) * dt
		if cfg.TaskSource != nil {
			cfg.TaskSource(epoch, now, live)
		}

		st := EpochStats{Epoch: epoch, Now: now}

		// Snapshot: shift expiries to be relative to now, drop expired
		// tasks, include only online workers.
		snap := &model.Problem{Instances: make([]model.Instance, 0, len(live.Instances))}
		type workerRef struct{ inst, local, global int }
		var refs []workerRef
		for i := range live.Instances {
			inst := &live.Instances[i]
			expired := pruneExpired(inst, now)
			report.ExpiredTasks += expired
			st.ExpiredTasks += expired

			si := model.Instance{
				CenterID: inst.CenterID,
				Center:   inst.Center,
				Travel:   inst.Travel,
				Points:   shiftExpiries(inst.Points, now),
			}
			for _, gw := range centers[i].workers {
				w := workers[gw]
				if w.busyTill > now {
					continue
				}
				refs = append(refs, workerRef{inst: len(snap.Instances), local: len(si.Workers), global: gw})
				si.Workers = append(si.Workers, w.worker)
			}
			st.OnlineWorkers += len(si.Workers)
			snap.Instances = append(snap.Instances, si)
		}

		res, err := Assign(snap, cfg.Solver, Options{VDPS: cfg.VDPS, Parallelism: cfg.Parallelism})
		if err != nil {
			return nil, fmt.Errorf("epoch %d: %w", epoch, err)
		}
		st.Difference = res.Difference
		st.Average = res.Average

		// Apply routes: mark workers busy, account earnings, remove the
		// completed delivery points' tasks from the live pool.
		for _, ref := range refs {
			route := res.PerCenter[ref.inst].Assignment.Routes[ref.local]
			if len(route) == 0 {
				continue
			}
			si := &snap.Instances[ref.inst]
			travel := si.RouteTime(ref.local, route)
			reward := si.RouteReward(route)
			w := workers[ref.global]
			w.busyTill = now + travel
			w.earnings += reward
			w.travel += travel
			// The worker finishes the route at its last delivery point and
			// rejoins the pool from there.
			w.worker.Loc = si.Points[route[len(route)-1]].Loc
			st.AssignedWorkers++

			liveInst := findInstance(live, si.CenterID)
			for _, pt := range route {
				id := si.Points[pt].ID
				st.CompletedTasks += removeTasks(liveInst, id)
			}
		}
		report.CompletedTasks += st.CompletedTasks
		report.Epochs = append(report.Epochs, st)
	}

	report.Earnings = make([]float64, len(workers))
	report.TravelTime = make([]float64, len(workers))
	rates := make([]float64, len(workers))
	for i, w := range workers {
		report.Earnings[i] = w.earnings
		report.TravelTime[i] = w.travel
		if w.travel > 0 {
			rates[i] = w.earnings / w.travel
		}
	}
	report.CumulativeDifference = payoff.Difference(rates)
	report.CumulativeAverage = payoff.Average(rates)
	return report, nil
}

// clonePoints deep-copies delivery points including task slices.
func clonePoints(src []model.DeliveryPoint) []model.DeliveryPoint {
	out := make([]model.DeliveryPoint, len(src))
	for i, dp := range src {
		out[i] = dp
		out[i].Tasks = append([]model.Task(nil), dp.Tasks...)
	}
	return out
}

// pruneExpired drops tasks whose absolute expiry is in the past and returns
// how many were dropped.
func pruneExpired(in *model.Instance, now float64) int {
	var dropped int
	for i := range in.Points {
		kept := in.Points[i].Tasks[:0]
		for _, t := range in.Points[i].Tasks {
			if t.Expiry > now {
				kept = append(kept, t)
			} else {
				dropped++
			}
		}
		in.Points[i].Tasks = kept
	}
	return dropped
}

// shiftExpiries returns a copy of the points with expiries made relative to
// now (the solver's time origin). Points with no live tasks are dropped so
// the solver does not waste candidates on reward-free locations; task Point
// indices are re-based onto the filtered slice.
func shiftExpiries(src []model.DeliveryPoint, now float64) []model.DeliveryPoint {
	var out []model.DeliveryPoint
	for _, dp := range src {
		if len(dp.Tasks) == 0 {
			continue
		}
		cp := dp
		cp.Tasks = append([]model.Task(nil), dp.Tasks...)
		for j := range cp.Tasks {
			cp.Tasks[j].Point = len(out)
			cp.Tasks[j].Expiry -= now
			if cp.Tasks[j].Expiry <= 0 {
				// pruneExpired runs first, so this is defensive only.
				cp.Tasks[j].Expiry = math.SmallestNonzeroFloat64
			}
		}
		out = append(out, cp)
	}
	return out
}

// findInstance locates the live instance by center ID.
func findInstance(p *model.Problem, centerID int) *model.Instance {
	for i := range p.Instances {
		if p.Instances[i].CenterID == centerID {
			return &p.Instances[i]
		}
	}
	return nil
}

// removeTasks clears all tasks of the delivery point with the given ID and
// returns how many were removed.
func removeTasks(in *model.Instance, pointID int) int {
	if in == nil {
		return 0
	}
	for i := range in.Points {
		if in.Points[i].ID == pointID {
			n := len(in.Points[i].Tasks)
			in.Points[i].Tasks = nil
			return n
		}
	}
	return 0
}
