package platform

import (
	"context"
	"errors"
	"math"
	"testing"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

func smallProblem(t *testing.T, centers int) *model.Problem {
	t.Helper()
	p, err := dataset.GenerateSYN(dataset.SYNConfig{
		Seed: 42, Centers: centers,
		Tasks: centers * 30, Workers: centers * 4, DeliveryPoints: centers * 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssignAggregates(t *testing.T) {
	p := smallProblem(t, 4)
	res, err := Assign(p, assign.GTA{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCenter) != 4 {
		t.Fatalf("per-center results = %d", len(res.PerCenter))
	}
	if len(res.Payoffs) != p.WorkerCount() {
		t.Errorf("payoffs = %d, want %d", len(res.Payoffs), p.WorkerCount())
	}
	if math.Abs(res.Difference-payoff.Difference(res.Payoffs)) > 1e-12 {
		t.Error("aggregate difference inconsistent")
	}
	if math.Abs(res.Average-payoff.Average(res.Payoffs)) > 1e-12 {
		t.Error("aggregate average inconsistent")
	}
	for i, r := range res.PerCenter {
		if err := r.Assignment.Validate(&p.Instances[i]); err != nil {
			t.Errorf("center %d assignment invalid: %v", i, err)
		}
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestAssignParallelMatchesSerial(t *testing.T) {
	p := smallProblem(t, 6)
	serial, err := Assign(p, assign.GTA{}, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Assign(p, assign.GTA{}, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.Difference-parallel.Difference) > 1e-12 ||
		math.Abs(serial.Average-parallel.Average) > 1e-12 {
		t.Error("parallel solve changed the result")
	}
}

func TestAssignEmptyProblem(t *testing.T) {
	if _, err := Assign(&model.Problem{}, assign.GTA{}, Options{}); err != ErrNoInstances {
		t.Errorf("err = %v, want ErrNoInstances", err)
	}
}

func TestAssignCenterWithoutWorkers(t *testing.T) {
	p := smallProblem(t, 2)
	p.Instances[1].Workers = nil
	res, err := Assign(p, assign.GTA{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCenter[1].Assignment.Routes) != 0 {
		t.Error("workerless center should yield empty assignment")
	}
}

func TestAssignPropagatesVDPSLimit(t *testing.T) {
	p := smallProblem(t, 2)
	_, err := Assign(p, assign.GTA{}, Options{VDPS: vdps.Options{MaxSets: 1}})
	if err == nil {
		t.Error("expected candidate limit error to propagate")
	}
}

func TestSimulateBasics(t *testing.T) {
	p := smallProblem(t, 2)
	rep, err := Simulate(p, SimConfig{
		Epochs:      4,
		EpochLength: 0.5,
		Solver:      assign.GTA{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 4 {
		t.Fatalf("epochs = %d", len(rep.Epochs))
	}
	if len(rep.Earnings) != p.WorkerCount() {
		t.Errorf("earnings entries = %d, want %d", len(rep.Earnings), p.WorkerCount())
	}
	// Conservation: a task is completed at most once and never both
	// completed and expired.
	if rep.CompletedTasks+rep.ExpiredTasks > p.TaskCount() {
		t.Errorf("completed %d + expired %d exceed total %d",
			rep.CompletedTasks, rep.ExpiredTasks, p.TaskCount())
	}
	if rep.CompletedTasks == 0 {
		t.Error("simulation completed no tasks")
	}
	for i, e := range rep.Earnings {
		if e > 0 && rep.TravelTime[i] == 0 {
			t.Errorf("worker %d earned %g with zero travel", i, e)
		}
	}
}

func TestSimulateWorkersGoOffline(t *testing.T) {
	p := smallProblem(t, 1)
	rep, err := Simulate(p, SimConfig{
		Epochs:      3,
		EpochLength: 0.1, // shorter than any route: assigned workers stay busy
		Solver:      assign.GTA{},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Epochs[0]
	second := rep.Epochs[1]
	if first.AssignedWorkers == 0 {
		t.Skip("nothing assigned in epoch 0")
	}
	if second.OnlineWorkers >= first.OnlineWorkers {
		t.Errorf("online workers did not drop: %d -> %d",
			first.OnlineWorkers, second.OnlineWorkers)
	}
}

func TestSimulateTaskSource(t *testing.T) {
	p := smallProblem(t, 1)
	// Strip all initial tasks; inject fresh ones each epoch.
	for i := range p.Instances[0].Points {
		p.Instances[0].Points[i].Tasks = nil
	}
	nextID := 100000
	rep, err := Simulate(p, SimConfig{
		Epochs: 3,
		Solver: assign.GTA{},
		TaskSource: func(epoch int, now float64, prob *model.Problem) {
			in := &prob.Instances[0]
			for i := range in.Points {
				in.Points[i].Tasks = append(in.Points[i].Tasks, model.Task{
					ID: nextID, Point: i, Expiry: now + 2, Reward: 1,
				})
				nextID++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompletedTasks == 0 {
		t.Error("no injected tasks completed")
	}
}

func TestSimulateExpiry(t *testing.T) {
	p := smallProblem(t, 1)
	// Remove all workers: every task must eventually expire, none complete.
	p.Instances[0].Workers = nil
	total := p.TaskCount()
	rep, err := Simulate(p, SimConfig{
		Epochs:      6,
		EpochLength: 1,
		Solver:      assign.GTA{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompletedTasks != 0 {
		t.Errorf("completed %d tasks without workers", rep.CompletedTasks)
	}
	// Default SYN expiry is 2h; after 6 epochs everything has expired.
	if rep.ExpiredTasks != total {
		t.Errorf("expired %d, want all %d", rep.ExpiredTasks, total)
	}
}

func TestSimulateRequiresSolver(t *testing.T) {
	p := smallProblem(t, 1)
	if _, err := Simulate(p, SimConfig{}); err != ErrNoSolver {
		t.Errorf("err = %v, want ErrNoSolver", err)
	}
	if _, err := Simulate(&model.Problem{}, SimConfig{Solver: assign.GTA{}}); err != ErrNoInstances {
		t.Errorf("err = %v, want ErrNoInstances", err)
	}
}

func TestSimulateDoesNotMutateInput(t *testing.T) {
	p := smallProblem(t, 1)
	before := p.TaskCount()
	if _, err := Simulate(p, SimConfig{Epochs: 2, Solver: assign.GTA{}}); err != nil {
		t.Fatal(err)
	}
	if p.TaskCount() != before {
		t.Errorf("input problem mutated: %d -> %d tasks", before, p.TaskCount())
	}
}

// Property: over random configurations, the simulation conserves tasks —
// completed + expired + still-live = initially-present + injected — and all
// earnings trace back to completed task rewards (unit rewards here).
func TestSimulateConservation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p, err := dataset.GenerateSYN(dataset.SYNConfig{
			Seed: 100 + seed, Centers: 2,
			Tasks: 80, Workers: 10, DeliveryPoints: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		injected := 0
		rep, err := Simulate(p, SimConfig{
			Epochs:      4,
			EpochLength: 0.8,
			Solver:      assign.GTA{},
			TaskSource: func(epoch int, now float64, prob *model.Problem) {
				in := &prob.Instances[0]
				for i := range in.Points {
					in.Points[i].Tasks = append(in.Points[i].Tasks, model.Task{
						ID: 1<<20 + injected, Point: i, Expiry: now + 1.5, Reward: 1,
					})
					injected++
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		total := p.TaskCount() + injected
		if rep.CompletedTasks+rep.ExpiredTasks > total {
			t.Errorf("seed %d: completed %d + expired %d > total %d",
				seed, rep.CompletedTasks, rep.ExpiredTasks, total)
		}
		var earned float64
		for _, e := range rep.Earnings {
			earned += e
		}
		if math.Abs(earned-float64(rep.CompletedTasks)) > 1e-6 {
			t.Errorf("seed %d: earnings %g != completed unit-reward tasks %d",
				seed, earned, rep.CompletedTasks)
		}
	}
}

// Workers rejoin the pool at their route's final delivery point, not at
// their original location.
func TestSimulateWorkersMoveWithRoutes(t *testing.T) {
	p := smallProblem(t, 1)
	original := make([]model.Worker, len(p.Instances[0].Workers))
	copy(original, p.Instances[0].Workers)

	// Two epochs with a long gap so round-0 workers are online again in
	// round 1; if anyone was assigned in round 0, some worker's snapshot
	// location in round 1 must differ from its original.
	moved := false
	_, err := Simulate(p, SimConfig{
		Epochs:      2,
		EpochLength: 10, // longer than any route
		Solver:      checkLocSolver{inner: assign.GTA{}, original: original, moved: &moved},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Error("no worker position changed between epochs")
	}
}

// checkLocSolver records whether any worker's location differs from the
// original fleet positions when the solver sees the snapshot.
type checkLocSolver struct {
	inner    assign.Assigner
	original []model.Worker
	moved    *bool
}

func (c checkLocSolver) Name() string { return c.inner.Name() }

func (c checkLocSolver) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	in := g.Instance()
	for _, w := range in.Workers {
		for _, o := range c.original {
			if w.ID == o.ID && w.Loc != o.Loc {
				*c.moved = true
			}
		}
	}
	return c.inner.Assign(ctx, g)
}

func TestAssignContextCancelled(t *testing.T) {
	p := smallProblem(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AssignContext(ctx, p, assign.GTA{}, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// A live context behaves like Assign.
	res, err := AssignContext(context.Background(), p, assign.GTA{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCenter) != 4 {
		t.Errorf("per-center = %d", len(res.PerCenter))
	}
}
