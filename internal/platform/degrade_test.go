package platform

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/fault"
	"fairtask/internal/vdps"
)

// armPoint arms a failpoint for the test and guarantees a clean registry
// afterwards even when the test fails early.
func armPoint(t *testing.T, name string, b fault.Behavior) *fault.Failpoint {
	t.Helper()
	fp := fault.Lookup(name)
	if fp == nil {
		t.Fatalf("failpoint %q not registered", name)
	}
	fp.Arm(b)
	t.Cleanup(fault.DisarmAll)
	return fp
}

func TestDegradeFallsToSampled(t *testing.T) {
	p := smallProblem(t, 1)
	in := &p.Instances[0]
	armPoint(t, "vdps.generate", fault.Behavior{Kind: fault.KindError, Count: 10})

	res, rep, err := SolveInstance(context.Background(), in, assign.GTA{}, Options{
		Degrade: &Degrade{},
	})
	if err != nil {
		t.Fatalf("SolveInstance: %v", err)
	}
	if res.Degraded != RungSampled {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, RungSampled)
	}
	if rep == nil {
		t.Fatal("degraded rung served without an audit report")
	}
	if !rep.OK() {
		t.Fatalf("sampled rung audit violations: %v", rep.Err())
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Fatalf("sampled assignment invalid: %v", err)
	}
}

func TestDegradeFallsToGreedy(t *testing.T) {
	p := smallProblem(t, 1)
	in := &p.Instances[0]
	// Exact generation always fails; sampled generation fails exactly once,
	// taking down the sampled rung but leaving the greedy rung healthy.
	armPoint(t, "vdps.generate", fault.Behavior{Kind: fault.KindError, Count: 10})
	armPoint(t, "vdps.sample", fault.Behavior{Kind: fault.KindError, Count: 1})

	res, rep, err := SolveInstance(context.Background(), in, assign.MMTA{}, Options{
		Degrade: &Degrade{},
	})
	if err != nil {
		t.Fatalf("SolveInstance: %v", err)
	}
	if res.Degraded != RungGreedy {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, RungGreedy)
	}
	if rep == nil || !rep.OK() {
		t.Fatalf("greedy rung must be audit-clean, report = %v", rep)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Fatalf("greedy assignment invalid: %v", err)
	}
}

// TestDegradeSeedSweepAuditClean is the differential sweep: across several
// generated instances, both fallback rungs must produce assignments that
// pass the independent auditor's structural checks.
func TestDegradeSeedSweepAuditClean(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p, err := dataset.GenerateSYN(dataset.SYNConfig{
			Seed: seed, Centers: 1, Tasks: 30, Workers: 4, DeliveryPoints: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		in := &p.Instances[0]
		for _, rung := range []string{RungSampled, RungGreedy} {
			fault.DisarmAll()
			fault.Lookup("vdps.generate").Arm(fault.Behavior{Kind: fault.KindError, Count: 100})
			if rung == RungGreedy {
				fault.Lookup("vdps.sample").Arm(fault.Behavior{Kind: fault.KindError, Count: 1})
			}
			res, rep, err := SolveInstance(context.Background(), in, assign.GTA{}, Options{
				Degrade: &Degrade{Sample: vdps.SampleOptions{Seed: seed}},
			})
			if err != nil {
				t.Fatalf("seed %d rung %s: %v", seed, rung, err)
			}
			if res.Degraded != rung {
				t.Errorf("seed %d: Degraded = %q, want %q", seed, res.Degraded, rung)
			}
			if rep == nil {
				t.Errorf("seed %d rung %s: no audit report", seed, rung)
			} else if !rep.OK() {
				t.Errorf("seed %d rung %s: audit failed: %v", seed, rung, rep.Err())
			}
		}
	}
	fault.DisarmAll()
}

// TestDegradeMonotoneLadder is the ladder's core property: a rung never
// engages unless every better rung failed. Failpoint hit counters expose the
// order in which the rungs ran.
func TestDegradeMonotoneLadder(t *testing.T) {
	p := smallProblem(t, 1)
	in := &p.Instances[0]

	// Healthy system: the exact rung serves, the sampled generator is never
	// even consulted.
	fault.DisarmAll()
	t.Cleanup(fault.DisarmAll)
	res, _, err := SolveInstance(context.Background(), in, assign.GTA{}, Options{
		Degrade: &Degrade{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != "" {
		t.Fatalf("healthy solve degraded to %q", res.Degraded)
	}

	// Exact generation broken, with retries: the sampled rung may engage
	// only after the exact rung exhausted its full retry budget.
	gen := armPoint(t, "vdps.generate", fault.Behavior{Kind: fault.KindError, Count: 100})
	// Disarmed points count nothing, so observe the sampled generator with a
	// harmless 1ns sleep behavior that never fails anything.
	sample := armPoint(t, "vdps.sample", fault.Behavior{Kind: fault.KindSleep, Delay: time.Nanosecond})
	res, _, err = SolveInstance(context.Background(), in, assign.GTA{}, Options{
		Degrade: &Degrade{},
		Retry:   &fault.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != RungSampled {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, RungSampled)
	}
	if _, fired := gen.Stats(); fired != 3 {
		t.Errorf("exact rung fired the generate failpoint %d times, want 3 (full retry budget)", fired)
	}
	if hits, _ := sample.Stats(); hits == 0 {
		t.Error("sampled rung served but never touched the sampled generator")
	}
}

// TestDegradeBudgetTrips pins the rung label to the budget that tripped: an
// already-expired exact budget pushes the solve onto the sampled rung.
func TestDegradeBudgetTrips(t *testing.T) {
	p := smallProblem(t, 1)
	in := &p.Instances[0]
	res, _, err := SolveInstance(context.Background(), in, assign.GTA{}, Options{
		Degrade: &Degrade{ExactBudget: time.Nanosecond, SampledBudget: time.Minute},
	})
	if err != nil {
		t.Fatalf("SolveInstance: %v", err)
	}
	if res.Degraded != RungSampled {
		t.Fatalf("Degraded = %q, want %q after exact budget expiry", res.Degraded, RungSampled)
	}
}

func TestDegradeNegativeBudgetSkipsRung(t *testing.T) {
	p := smallProblem(t, 1)
	in := &p.Instances[0]
	gen := fault.Lookup("vdps.generate")
	gen.Disarm()
	res, _, err := SolveInstance(context.Background(), in, assign.GTA{}, Options{
		Degrade: &Degrade{ExactBudget: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != RungSampled {
		t.Fatalf("Degraded = %q, want %q with the exact rung disabled", res.Degraded, RungSampled)
	}
}

func TestDegradeDeadParentContextAborts(t *testing.T) {
	p := smallProblem(t, 1)
	in := &p.Instances[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Armed observer: a disarmed point counts nothing, so give the sampled
	// generator a harmless behavior whose hit counter proves (non-)use.
	sample := armPoint(t, "vdps.sample", fault.Behavior{Kind: fault.KindSleep, Delay: time.Nanosecond})

	_, _, err := SolveInstance(ctx, in, assign.GTA{}, Options{Degrade: &Degrade{}})
	if err == nil {
		t.Fatal("expected error with a dead parent context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// The caller is out of time: no fallback rung may burn CPU.
	if hits, _ := sample.Stats(); hits != 0 {
		t.Errorf("sampled generator consulted %d times after parent cancellation", hits)
	}
}

func TestDegradeLadderExhausted(t *testing.T) {
	p := smallProblem(t, 1)
	in := &p.Instances[0]
	armPoint(t, "vdps.generate", fault.Behavior{Kind: fault.KindError, Count: 100})
	armPoint(t, "vdps.sample", fault.Behavior{Kind: fault.KindError, Count: 100})

	_, _, err := SolveInstance(context.Background(), in, assign.GTA{}, Options{
		Degrade: &Degrade{},
	})
	if err == nil {
		t.Fatal("expected ladder exhaustion")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want fault.ErrInjected in the chain", err)
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want a *fault.Error in the chain", err)
	}
}

// TestChaosSolveDeterministic re-runs the same seeded chaos scenario and
// demands bit-identical results: same rung, same routes, same payoffs.
func TestChaosSolveDeterministic(t *testing.T) {
	p := smallProblem(t, 1)

	run := func() (*Result, error) {
		fault.DisarmAll()
		// Arm resets the counters, so each run sees an identical trigger
		// schedule.
		fault.Lookup("vdps.generate").Arm(fault.Behavior{Kind: fault.KindError, Count: 3})
		return Assign(p, assign.GTA{}, Options{
			Parallelism: 1,
			Retry:       &fault.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, Seed: 7},
			Degrade:     &Degrade{Sample: vdps.SampleOptions{Seed: 11}},
		})
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	fault.DisarmAll()
	if err != nil {
		t.Fatal(err)
	}
	if a.Degraded != b.Degraded {
		t.Fatalf("rungs differ across identical runs: %q vs %q", a.Degraded, b.Degraded)
	}
	if !reflect.DeepEqual(a.Payoffs, b.Payoffs) {
		t.Error("payoffs differ across identical seeded chaos runs")
	}
	for i := range a.PerCenter {
		if !reflect.DeepEqual(a.PerCenter[i].Assignment, b.PerCenter[i].Assignment) {
			t.Errorf("center %d assignments differ across identical seeded chaos runs", i)
		}
	}
}

func TestDegradeWorseRungOrdering(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"", "", ""},
		{"", RungSampled, RungSampled},
		{RungSampled, "", RungSampled},
		{RungSampled, RungGreedy, RungGreedy},
		{RungGreedy, RungSampled, RungGreedy},
	}
	for _, c := range cases {
		if got := worseRung(c.a, c.b); got != c.want {
			t.Errorf("worseRung(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}
