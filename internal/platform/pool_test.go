package platform

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/obs"
)

func TestPoolAssignMatchesDirect(t *testing.T) {
	p := smallProblem(t, 6)
	direct, err := Assign(p, assign.GTA{}, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4, nil)
	defer pool.Close()
	pooled, err := Assign(p, assign.GTA{}, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.Difference-pooled.Difference) > 1e-12 ||
		math.Abs(direct.Average-pooled.Average) > 1e-12 {
		t.Error("pooled solve changed the aggregate result")
	}
	for i := range direct.Payoffs {
		if direct.Payoffs[i] != pooled.Payoffs[i] {
			t.Fatalf("worker %d payoff %g pooled, %g direct", i, pooled.Payoffs[i], direct.Payoffs[i])
		}
	}
}

// TestPoolSharedAcrossBatches is the batch throughput mode's core contract:
// many independent assignments submitted concurrently onto one shared pool
// must each produce exactly the result a sequential solve would, with no
// cross-batch interference (run under -race in CI).
func TestPoolSharedAcrossBatches(t *testing.T) {
	const batches = 8
	pool := NewPool(4, nil)
	defer pool.Close()
	var wg sync.WaitGroup
	errs := make([]error, batches)
	for b := 0; b < batches; b++ {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := dataset.GenerateSYN(dataset.SYNConfig{
				Seed: int64(b), Centers: 3, Tasks: 45, Workers: 9, DeliveryPoints: 15,
			})
			if err != nil {
				errs[b] = err
				return
			}
			pooled, err := Assign(p, assign.GTA{}, Options{Pool: pool})
			if err != nil {
				errs[b] = err
				return
			}
			direct, err := Assign(p, assign.GTA{}, Options{Parallelism: 1})
			if err != nil {
				errs[b] = err
				return
			}
			if pooled.Difference != direct.Difference || pooled.Average != direct.Average {
				errs[b] = fmt.Errorf("batch %d: pooled (%g, %g), direct (%g, %g)",
					b, pooled.Difference, pooled.Average, direct.Difference, direct.Average)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewParallelMetrics(reg)
	pool := NewPool(3, m)
	defer pool.Close()
	if pool.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", pool.Size())
	}
	p := smallProblem(t, 5)
	if _, err := Assign(p, assign.GTA{}, Options{Pool: pool}); err != nil {
		t.Fatal(err)
	}
	if got := m.PoolWorkers.Value(); got != 3 {
		t.Errorf("fta_parallel_pool_workers = %v, want 3", got)
	}
	if got := m.Batches.Value(); got != 1 {
		t.Errorf("fta_parallel_batches_total = %v, want 1", got)
	}
	if got := m.Tasks.Value(); got != 5 {
		t.Errorf("fta_parallel_tasks_total = %v, want 5 (one per center)", got)
	}
}

func TestPoolDefaultSize(t *testing.T) {
	pool := NewPool(0, nil)
	defer pool.Close()
	if pool.Size() != runtime.GOMAXPROCS(0) {
		t.Errorf("Size() = %d, want GOMAXPROCS %d", pool.Size(), runtime.GOMAXPROCS(0))
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	pool := NewPool(2, nil)
	pool.Close()
	pool.Close() // second close must be a no-op, not a panic
	defer func() {
		if recover() == nil {
			t.Error("Submit after Close should panic")
		}
	}()
	pool.Submit(func() {})
}

// BenchmarkPlatformBatch is the batch throughput benchmark behind
// BENCH_platform.json: many small independent centers packed onto a shared
// pool. The pool=1 and pool=4 variants give the multi-core scaling ratio
// published in docs/PERFORMANCE.md (acceptance: >= 2.5x at 4 workers).
func BenchmarkPlatformBatch(b *testing.B) {
	p, err := dataset.GenerateSYN(dataset.SYNConfig{
		Seed: 42, Centers: 16, Tasks: 480, Workers: 64, DeliveryPoints: 160,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("pool=%d", size), func(b *testing.B) {
			pool := NewPool(size, nil)
			defer pool.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Assign(p, assign.GTA{}, Options{Pool: pool}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
