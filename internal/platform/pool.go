package platform

import (
	"runtime"
	"sync"
	"time"

	"fairtask/internal/obs"
)

// Pool is a shared, long-lived worker pool for the batch throughput mode:
// many independent multi-center assignments (and their per-center solves)
// are packed onto one fixed set of goroutines instead of each AssignContext
// call spinning up its own semaphore-bounded fan-out. A serving process
// creates one Pool at startup, passes it via Options.Pool on every solve,
// and closes it at shutdown — per-solve goroutine churn and oversubscription
// across concurrent requests disappear, which is where the multi-core
// throughput win on many small instances comes from (see
// docs/PERFORMANCE.md).
//
// Submit never runs the task inline and blocks while the queue is full.
// Pool tasks must therefore never Submit themselves (the platform's solve
// tasks do not), or a full queue could deadlock.
type Pool struct {
	tasks   chan poolTask
	wg      sync.WaitGroup
	size    int
	metrics *obs.ParallelMetrics

	mu     sync.Mutex
	closed bool
}

type poolTask struct {
	fn       func()
	enqueued time.Time
}

// NewPool starts a pool with the given number of worker goroutines; size <= 0
// means runtime.GOMAXPROCS(0). metrics (nil to disable) receives the
// fta_parallel_* pool telemetry.
func NewPool(size int, metrics *obs.ParallelMetrics) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		// A few queued tasks per worker keep the pool busy across batch
		// boundaries without letting one huge batch hog unbounded memory.
		tasks:   make(chan poolTask, 4*size),
		size:    size,
		metrics: metrics,
	}
	if metrics != nil {
		metrics.PoolWorkers.Set(float64(size))
	}
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		start := time.Now()
		// Tasks counts at dequeue, not completion: a task may unblock its
		// batch (wg.Done inside fn), and the batch's caller must be able to
		// read a settled counter the moment its last task returns.
		if m := p.metrics; m != nil {
			m.QueueSeconds.Observe(start.Sub(t.enqueued).Seconds())
			m.Tasks.Inc()
		}
		t.fn()
		if m := p.metrics; m != nil {
			m.TaskSeconds.Observe(time.Since(start).Seconds())
		}
	}
}

// Size returns the pool's worker-goroutine count.
func (p *Pool) Size() int { return p.size }

// batchStarted records one multi-center assignment served by the pool.
func (p *Pool) batchStarted() {
	if p.metrics != nil {
		p.metrics.Batches.Inc()
	}
}

// Submit enqueues fn for execution on a pool worker, blocking while the
// queue is full. Submitting to a closed pool panics, like sending on a
// closed channel.
func (p *Pool) Submit(fn func()) {
	p.tasks <- poolTask{fn: fn, enqueued: time.Now()}
}

// Close stops accepting tasks, runs everything already queued and waits for
// the workers to drain. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
