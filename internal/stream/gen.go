package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"fairtask/internal/model"
)

// StreamConfig parameterizes GenerateStream's synthetic delta stream.
type StreamConfig struct {
	// Seed drives every random choice; equal seeds on equal instances
	// yield bit-identical streams.
	Seed int64
	// Rate is the Poisson task-arrival intensity in tasks per hour.
	// Zero disables arrivals.
	Rate float64
	// Duration is the stream length in hours.
	Duration float64
	// Lifetime is each arriving task's delivery window in hours: a task
	// arriving at t expires at t+Lifetime (emitting a TaskExpired delta
	// when that falls inside the stream). Zero means 1.5.
	Lifetime float64
	// Reward is the arriving tasks' payment (zero means 1) and the scale
	// of re-priced rewards (uniform on [0, 2*Reward)).
	Reward float64
	// ChurnRate is the Poisson intensity of worker roster toggles per
	// hour: each event takes a random online worker offline or brings a
	// random offline one back. Zero disables churn.
	ChurnRate float64
	// RepriceRate is the Poisson intensity of task re-pricings per hour,
	// each re-pricing a random live task. Zero disables re-pricing.
	RepriceRate float64
	// FirstSeq numbers the first delta; zero means 1.
	FirstSeq uint64
	// TaskIDBase is the first generated task ID; zero means one past the
	// instance's largest task ID.
	TaskIDBase int
}

// ErrEmptyStreamSpace rejects stream configurations with nothing to act on:
// arrivals without delivery points, or churn without workers.
var ErrEmptyStreamSpace = errors.New("stream: instance has no space for the configured events")

// GenerateStream synthesizes a deterministic Poisson delta stream over the
// instance: task arrivals (with their matching expiries), worker churn and
// task re-pricings, merged in time order and numbered from FirstSeq. The
// instance is only read. Initial instance tasks are never auto-expired —
// the stream describes change, not the instance's own deadlines — but they
// participate in re-pricing until their printed expiry.
func GenerateStream(in *model.Instance, cfg StreamConfig) ([]Delta, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("stream: non-positive duration %v", cfg.Duration)
	}
	if cfg.Rate < 0 || cfg.ChurnRate < 0 || cfg.RepriceRate < 0 {
		return nil, fmt.Errorf("stream: negative event rate")
	}
	if cfg.Rate > 0 && len(in.Points) == 0 {
		return nil, fmt.Errorf("%w: arrivals need delivery points", ErrEmptyStreamSpace)
	}
	if cfg.ChurnRate > 0 && len(in.Workers) == 0 {
		return nil, fmt.Errorf("%w: churn needs workers", ErrEmptyStreamSpace)
	}
	if cfg.Lifetime <= 0 {
		cfg.Lifetime = 1.5
	}
	if cfg.Reward <= 0 {
		cfg.Reward = 1
	}
	nextID := cfg.TaskIDBase
	if nextID <= 0 {
		nextID = 1
		for p := range in.Points {
			for i := range in.Points[p].Tasks {
				if id := in.Points[p].Tasks[i].ID; id >= nextID {
					nextID = id + 1
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var ds []Delta

	// Task lifetimes, for the re-pricing pass: [start, end) intervals of
	// every task that is live at some point of the stream.
	type span struct {
		id         int
		start, end float64
	}
	var live []span
	for p := range in.Points {
		for i := range in.Points[p].Tasks {
			t := &in.Points[p].Tasks[i]
			live = append(live, span{id: t.ID, start: 0, end: t.Expiry})
		}
	}

	// Pass 1: arrivals and their expiries.
	if cfg.Rate > 0 {
		for t := rng.ExpFloat64() / cfg.Rate; t < cfg.Duration; t += rng.ExpFloat64() / cfg.Rate {
			id := nextID
			nextID++
			expiry := t + cfg.Lifetime
			ds = append(ds, Delta{
				Kind: TaskArrived, At: t, TaskID: id,
				Point: rng.Intn(len(in.Points)), Expiry: expiry, Reward: cfg.Reward,
			})
			if expiry < cfg.Duration {
				ds = append(ds, Delta{Kind: TaskExpired, At: expiry, TaskID: id})
			}
			live = append(live, span{id: id, start: t, end: expiry})
		}
	}

	// Pass 2: worker churn. The online/offline partition is simulated here
	// so every generated toggle is valid when the engine replays the
	// stream in sequence order.
	if cfg.ChurnRate > 0 {
		workers := make(map[int]model.Worker, len(in.Workers))
		online := make([]int, len(in.Workers))
		var offline []int
		for w := range in.Workers {
			workers[in.Workers[w].ID] = in.Workers[w]
			online[w] = in.Workers[w].ID
		}
		for t := rng.ExpFloat64() / cfg.ChurnRate; t < cfg.Duration; t += rng.ExpFloat64() / cfg.ChurnRate {
			if len(offline) > 0 && (len(online) == 0 || rng.Intn(2) == 1) {
				i := rng.Intn(len(offline))
				id := offline[i]
				offline = append(offline[:i], offline[i+1:]...)
				online = append(online, id)
				w := workers[id]
				ds = append(ds, Delta{
					Kind: WorkerOnline, At: t, WorkerID: id, Loc: w.Loc,
					MaxDP: w.MaxDP, Priority: w.Priority,
					Contribution: w.Contribution, Speed: w.Speed,
				})
			} else if len(online) > 0 {
				i := rng.Intn(len(online))
				id := online[i]
				online = append(online[:i], online[i+1:]...)
				offline = append(offline, id)
				ds = append(ds, Delta{Kind: WorkerOffline, At: t, WorkerID: id})
			}
		}
	}

	// Pass 3: re-pricings of tasks live at the event time. A task is live
	// on [start, end); the strict end keeps a re-pricing from ever tying
	// with its task's expiry delta.
	if cfg.RepriceRate > 0 {
		var alive []int
		for t := rng.ExpFloat64() / cfg.RepriceRate; t < cfg.Duration; t += rng.ExpFloat64() / cfg.RepriceRate {
			alive = alive[:0]
			for _, s := range live {
				if s.start <= t && t < s.end {
					alive = append(alive, s.id)
				}
			}
			reward := rng.Float64() * 2 * cfg.Reward
			if len(alive) == 0 {
				continue
			}
			ds = append(ds, Delta{
				Kind: RewardChanged, At: t,
				TaskID: alive[rng.Intn(len(alive))], Reward: reward,
			})
		}
	}

	// Merge in time order, ties broken by emission order, and number the
	// stream.
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].At < ds[j].At })
	first := cfg.FirstSeq
	if first == 0 {
		first = 1
	}
	for i := range ds {
		ds[i].Seq = first + uint64(i)
	}
	return ds, nil
}
