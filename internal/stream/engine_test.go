package stream

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"fairtask/internal/dataset"
	"fairtask/internal/evo"
	"fairtask/internal/game"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/vdps"
)

// testVDPS keeps candidate spaces tractable across the sweep scales.
var testVDPS = vdps.Options{Epsilon: 1.5}

// gmInstance builds a deterministic Gaussian-mixture instance.
func gmInstance(t testing.TB, seed int64, tasks, workers, points int) *model.Instance {
	t.Helper()
	in, err := dataset.GenerateGM(dataset.GMConfig{
		Seed: seed, Tasks: tasks, Workers: workers, DeliveryPoints: points,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// coldReference solves the instance from scratch with the paper-faithful
// reference dynamics — the pin the warm engine must match bit-for-bit.
func coldReference(t testing.TB, in *model.Instance, alg Algorithm, seed int64) *game.Result {
	t.Helper()
	if len(in.Workers) == 0 {
		return emptyResult(in)
	}
	g, err := vdps.Generate(in, testVDPS)
	if err != nil {
		t.Fatal(err)
	}
	var res *game.Result
	if alg == IEGT {
		res, err = evo.ReferenceIEGT(context.Background(), g, evo.Options{Seed: seed})
	} else {
		res, err = game.ReferenceFGT(context.Background(), g, game.Options{Seed: seed})
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertBitExact compares the engine's committed equilibrium against a cold
// reference solve: identical routes, bit-identical payoffs, P_dif and
// average, and the same round count (the trajectory pin).
func assertBitExact(t *testing.T, snap Snapshot, ref *game.Result) {
	t.Helper()
	if !reflect.DeepEqual(normRoutes(snap.Assignment.Routes), normRoutes(ref.Assignment.Routes)) {
		t.Fatalf("assignment diverged:\nwarm %v\ncold %v", snap.Assignment.Routes, ref.Assignment.Routes)
	}
	if snap.Summary.Difference != ref.Summary.Difference {
		t.Fatalf("P_dif diverged: warm %v cold %v", snap.Summary.Difference, ref.Summary.Difference)
	}
	if snap.Summary.Average != ref.Summary.Average {
		t.Fatalf("avg payoff diverged: warm %v cold %v", snap.Summary.Average, ref.Summary.Average)
	}
	if !reflect.DeepEqual(snap.Summary.Payoffs, ref.Summary.Payoffs) {
		t.Fatalf("payoffs diverged:\nwarm %v\ncold %v", snap.Summary.Payoffs, ref.Summary.Payoffs)
	}
	if snap.Iterations != ref.Iterations {
		t.Fatalf("round count diverged: warm %d cold %d", snap.Iterations, ref.Iterations)
	}
}

// normRoutes maps empty routes to nil so []int{} and nil compare equal.
func normRoutes(rs []model.Route) []model.Route {
	out := make([]model.Route, len(rs))
	for i, r := range rs {
		if len(r) > 0 {
			out[i] = r
		}
	}
	return out
}

// testStream synthesizes a mixed delta stream for the instance.
func testStream(t testing.TB, in *model.Instance, seed int64) []Delta {
	t.Helper()
	ds, err := GenerateStream(in, StreamConfig{
		Seed: seed, Rate: 25, Duration: 1, Lifetime: 0.8,
		ChurnRate: 3, RepriceRate: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("empty stream")
	}
	return ds
}

// TestEngineDifferential is the acceptance sweep: for both algorithms, five
// seeds and three instance scales, the warm engine's equilibrium after
// every checkpoint prefix of a mixed delta stream must be bit-identical to
// a cold reference solve of the independently replayed instance.
func TestEngineDifferential(t *testing.T) {
	scales := []struct{ tasks, workers, points int }{
		{30, 6, 12},
		{60, 10, 24},
		{90, 16, 36},
	}
	for _, alg := range []Algorithm{FGT, IEGT} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 5; seed++ {
				for si, sc := range scales {
					in := gmInstance(t, seed, sc.tasks, sc.workers, sc.points)
					opt := Options{Algorithm: alg, VDPS: testVDPS}
					opt.Game.Seed, opt.Evo.Seed = seed, seed
					eng, err := New(context.Background(), in, opt)
					if err != nil {
						t.Fatal(err)
					}
					assertBitExact(t, eng.Snapshot(), coldReference(t, in, alg, seed))

					ds := testStream(t, in, seed*101+int64(si))
					for i, d := range ds {
						if _, err := eng.Apply(context.Background(), d); err != nil {
							t.Fatalf("seed %d scale %d delta %d (%s): %v", seed, si, i, d.Kind, err)
						}
						if (i+1)%9 != 0 && i != len(ds)-1 {
							continue
						}
						replayed := in.Clone()
						if err := Replay(replayed, ds[:i+1]...); err != nil {
							t.Fatal(err)
						}
						assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, alg, seed))
					}
				}
			}
		})
	}
}

// TestEngineBatchedEquivalence pins ApplyAll: applying a stream in batches
// commits the same state as applying it delta by delta.
func TestEngineBatchedEquivalence(t *testing.T) {
	in := gmInstance(t, 7, 60, 10, 24)
	ds := testStream(t, in, 7)
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 7

	single, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if _, err := single.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	batched, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(ds); lo += 5 {
		hi := lo + 5
		if hi > len(ds) {
			hi = len(ds)
		}
		if _, err := batched.ApplyAll(context.Background(), ds[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	a, b := single.Snapshot(), batched.Snapshot()
	if !reflect.DeepEqual(a.Assignment, b.Assignment) || !reflect.DeepEqual(a.Summary.Payoffs, b.Summary.Payoffs) {
		t.Fatal("batched apply diverged from per-delta apply")
	}
	if a.Seq != b.Seq {
		t.Fatalf("seq diverged: %d vs %d", a.Seq, b.Seq)
	}
}

// TestBottleneckWorkerOffline takes the max-payoff (bottleneck) worker
// offline and checks the re-equilibrated state against a cold solve of the
// reduced roster.
func TestBottleneckWorkerOffline(t *testing.T) {
	in := gmInstance(t, 3, 60, 10, 24)
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 3
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	best, bestP := -1, math.Inf(-1)
	for w, p := range snap.Summary.Payoffs {
		if p > bestP {
			best, bestP = w, p
		}
	}
	if bestP <= 0 {
		t.Fatal("no worker with positive payoff in seed instance")
	}
	id := in.Workers[best].ID
	res, err := eng.Apply(context.Background(), Delta{Seq: 1, Kind: WorkerOffline, WorkerID: id})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkersTouched == 0 {
		t.Fatal("expected the departed worker to count as touched")
	}
	replayed := in.Clone()
	if err := Replay(replayed, Delta{Seq: 1, Kind: WorkerOffline, WorkerID: id}); err != nil {
		t.Fatal(err)
	}
	if len(replayed.Workers) != len(in.Workers)-1 {
		t.Fatal("replay did not drop the worker")
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 3))
}

// TestExpiryChangeRegenerates expires the task pinning a point's earliest
// expiry mid-stream, which must force a candidate regeneration and still
// land on the cold equilibrium.
func TestExpiryChangeRegenerates(t *testing.T) {
	in := gmInstance(t, 4, 60, 10, 24)
	// Find a point whose earliest expiry is pinned by a unique minimum task.
	target := -1
	var taskID int
	for p := range in.Points {
		tasks := in.Points[p].Tasks
		if len(tasks) < 2 {
			continue
		}
		minI := 0
		for i := range tasks {
			if tasks[i].Expiry < tasks[minI].Expiry {
				minI = i
			}
		}
		unique := true
		for i := range tasks {
			if i != minI && tasks[i].Expiry == tasks[minI].Expiry {
				unique = false
			}
		}
		if unique {
			target, taskID = p, tasks[minI].ID
			break
		}
	}
	if target < 0 {
		t.Skip("no point with a unique minimum-expiry task")
	}
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 4
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	d := Delta{Seq: 1, Kind: TaskExpired, TaskID: taskID}
	res, err := eng.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveRegen {
		t.Fatalf("resolve = %q, want %q", res.Resolve, ResolveRegen)
	}
	replayed := in.Clone()
	if err := Replay(replayed, d); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 4))
}

// TestSequenceRejection pins the deterministic rejection of duplicate and
// out-of-order events: the engine state and sequence cursor are untouched,
// and the same rejection repeats on retry.
func TestSequenceRejection(t *testing.T) {
	in := gmInstance(t, 5, 30, 6, 12)
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 5
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	ok := Delta{Seq: 5, Kind: RewardChanged, TaskID: in.Points[0].Tasks[0].ID, Reward: 2}
	if _, err := eng.Apply(context.Background(), ok); err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()

	for _, bad := range []uint64{5, 3, 0} {
		d := ok
		d.Seq = bad
		for try := 0; try < 2; try++ { // deterministic: same rejection twice
			if _, err := eng.Apply(context.Background(), d); !errors.Is(err, ErrStaleSeq) {
				t.Fatalf("seq %d try %d: err = %v, want ErrStaleSeq", bad, try, err)
			}
		}
	}
	// Mid-batch violations reject the whole batch atomically.
	batch := []Delta{
		{Seq: 6, Kind: RewardChanged, TaskID: in.Points[0].Tasks[0].ID, Reward: 3},
		{Seq: 6, Kind: RewardChanged, TaskID: in.Points[0].Tasks[0].ID, Reward: 4},
	}
	if _, err := eng.ApplyAll(context.Background(), batch); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("mid-batch: err = %v, want ErrStaleSeq", err)
	}
	after := eng.Snapshot()
	if after.Seq != before.Seq || !reflect.DeepEqual(after.Summary.Payoffs, before.Summary.Payoffs) {
		t.Fatal("rejected events mutated engine state")
	}
	// The cursor did not advance, so the next in-order event still fits.
	if _, err := eng.Apply(context.Background(), Delta{Seq: 6, Kind: RewardChanged, TaskID: in.Points[0].Tasks[0].ID, Reward: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestEntityRejection pins rejections of unknown and duplicate entities.
func TestEntityRejection(t *testing.T) {
	in := gmInstance(t, 6, 30, 6, 12)
	opt := Options{VDPS: testVDPS}
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d    Delta
		want error
	}{
		{Delta{Seq: 1, Kind: TaskExpired, TaskID: 99999}, ErrUnknownTask},
		{Delta{Seq: 1, Kind: RewardChanged, TaskID: 99999, Reward: 1}, ErrUnknownTask},
		{Delta{Seq: 1, Kind: WorkerOffline, WorkerID: 99999}, ErrUnknownWorker},
		{Delta{Seq: 1, Kind: TaskArrived, TaskID: 99999, Point: len(in.Points), Expiry: 1, Reward: 1}, ErrUnknownPoint},
		{Delta{Seq: 1, Kind: TaskArrived, TaskID: in.Points[0].Tasks[0].ID, Point: 0, Expiry: 1, Reward: 1}, ErrDuplicateTask},
		{Delta{Seq: 1, Kind: WorkerOnline, WorkerID: in.Workers[0].ID}, ErrDuplicateWorker},
		{Delta{Seq: 1, Kind: TaskArrived, TaskID: 99999, Point: 0, Expiry: -1, Reward: 1}, ErrBadDelta},
		{Delta{Seq: 1, Kind: "bogus"}, ErrUnknownKind},
	}
	for _, tc := range cases {
		if _, err := eng.Apply(context.Background(), tc.d); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.d.Kind, err, tc.want)
		}
	}
	if eng.Snapshot().Seq != 0 {
		t.Fatal("rejections consumed sequence numbers")
	}
}

// TestEmptyEngine starts from a workerless instance, brings a worker
// online, and drains back to empty — the roster lifecycle edge.
func TestEmptyEngine(t *testing.T) {
	in := gmInstance(t, 8, 20, 4, 10)
	in.Workers = nil
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 8
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if snap := eng.Snapshot(); len(snap.Summary.Payoffs) != 0 || !snap.Converged {
		t.Fatal("empty engine should hold a converged empty equilibrium")
	}
	on := Delta{Seq: 1, Kind: WorkerOnline, WorkerID: 42, Loc: geo.Point{X: 0.5, Y: 0.5}, MaxDP: 2}
	if _, err := eng.Apply(context.Background(), on); err != nil {
		t.Fatal(err)
	}
	replayed := in.Clone()
	if err := Replay(replayed, on); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 8))
	if _, err := eng.Apply(context.Background(), Delta{Seq: 2, Kind: WorkerOffline, WorkerID: 42}); err != nil {
		t.Fatal(err)
	}
	if snap := eng.Snapshot(); len(snap.Summary.Payoffs) != 0 {
		t.Fatal("engine did not drain to the empty equilibrium")
	}
}

// TestNoopFastPath pins the no-op detection: a zero-reward arrival that
// does not move its point's earliest expiry changes nothing the game
// reads, so the engine keeps the standing equilibrium without resolving.
func TestNoopFastPath(t *testing.T) {
	in := gmInstance(t, 9, 30, 6, 12)
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 9
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	d := Delta{Seq: 1, Kind: TaskArrived, TaskID: 90001, Point: 0, Expiry: 1e6, Reward: 0}
	res, err := eng.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveNoop {
		t.Fatalf("resolve = %q, want %q", res.Resolve, ResolveNoop)
	}
	after := eng.Snapshot()
	if !reflect.DeepEqual(before.Summary.Payoffs, after.Summary.Payoffs) {
		t.Fatal("no-op changed payoffs")
	}
	if after.Seq != 1 {
		t.Fatalf("seq = %d, want 1", after.Seq)
	}
	// The arrival is still visible in the committed instance.
	if _, _, ok := findTask(after.Instance, 90001); !ok {
		t.Fatal("no-op arrival missing from committed instance")
	}
}
