package stream

import (
	"context"
	"testing"
)

// TestSnapshotIsolation pins the aliasing contract of Engine.Snapshot: the
// returned value must share no backing arrays with the engine's committed
// state, so a caller may mutate it freely — and the engine may keep applying
// deltas — without either side observing the other. Run under -race in CI:
// a shallow snapshot turns the concurrent ApplyAll below into a data race.
func TestSnapshotIsolation(t *testing.T) {
	in := gmInstance(t, 11, 30, 8, 12)
	eng, err := New(context.Background(), in, Options{VDPS: testVDPS})
	if err != nil {
		t.Fatal(err)
	}
	ds := testStream(t, in, 11)
	mid := len(ds) / 2
	if _, err := eng.ApplyAll(context.Background(), ds[:mid]); err != nil {
		t.Fatal(err)
	}

	snap := eng.Snapshot()
	// Mutate every reachable slice in the snapshot while the engine applies
	// the rest of the stream concurrently. Under -race, any shared backing
	// array between snapshot and engine state is reported here.
	done := make(chan error, 1)
	go func() {
		_, err := eng.ApplyAll(context.Background(), ds[mid:])
		done <- err
	}()
	for i := range snap.Summary.Payoffs {
		snap.Summary.Payoffs[i] = -1
	}
	for w := range snap.Assignment.Routes {
		for i := range snap.Assignment.Routes[w] {
			snap.Assignment.Routes[w][i] = -1
		}
	}
	for i := range snap.Instance.Workers {
		snap.Instance.Workers[i].MaxDP = 99
	}
	for i := range snap.Instance.Points {
		snap.Instance.Points[i].ID = -1
		for j := range snap.Instance.Points[i].Tasks {
			snap.Instance.Points[i].Tasks[j].Reward = -1
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The mutations above must not have leaked into the engine: a fresh
	// snapshot still matches a cold reference solve of the full stream.
	replayed := in.Clone()
	for _, d := range ds {
		if err := Replay(replayed, d); err != nil {
			t.Fatal(err)
		}
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 0))
}

// TestSnapshotAfterMutationStable pins the cheaper direction without
// concurrency: mutating one snapshot must leave a second snapshot of the
// same engine untouched.
func TestSnapshotAfterMutationStable(t *testing.T) {
	in := gmInstance(t, 5, 24, 6, 10)
	eng, err := New(context.Background(), in, Options{VDPS: testVDPS})
	if err != nil {
		t.Fatal(err)
	}
	a := eng.Snapshot()
	for i := range a.Summary.Payoffs {
		a.Summary.Payoffs[i] = 1e9
	}
	for w := range a.Assignment.Routes {
		for i := range a.Assignment.Routes[w] {
			a.Assignment.Routes[w][i] = 1 << 20
		}
	}
	b := eng.Snapshot()
	for _, p := range b.Summary.Payoffs {
		if p == 1e9 {
			t.Fatal("snapshot payoffs share a backing array with the engine")
		}
	}
	for _, r := range b.Assignment.Routes {
		for _, dp := range r {
			if dp == 1<<20 {
				t.Fatal("snapshot routes share a backing array with the engine")
			}
		}
	}
}
