package stream

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"fairtask/internal/fault"
	"fairtask/internal/obs"
	"fairtask/internal/platform"
)

// liveTask returns a task on a delivery point backing the current
// equilibrium, so re-pricing it is game-visible (a point unreachable before
// its expiry belongs to no candidate, and re-pricing it is a correct no-op).
func liveTask(t *testing.T, eng *Engine) int {
	t.Helper()
	snap := eng.Snapshot()
	for _, r := range snap.Assignment.Routes {
		for _, p := range r {
			if len(snap.Instance.Points[p].Tasks) > 0 {
				return snap.Instance.Points[p].Tasks[0].ID
			}
		}
	}
	t.Fatal("no assigned point with tasks")
	return 0
}

// TestResolveFailpointColdFallback arms the stream.resolve failpoint for
// one hit: the warm resolve is refused mid-delta, the engine degrades to an
// audited cold solve through the platform ladder, the batch still commits
// bit-exactly, and the next delta is warm again.
func TestResolveFailpointColdFallback(t *testing.T) {
	defer fault.DisarmAll()
	in := gmInstance(t, 11, 60, 10, 24)
	reg := obs.NewRegistry()
	opt := Options{VDPS: testVDPS, Metrics: obs.NewStreamMetrics(reg)}
	opt.Game.Seed = 11
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	taskID := liveTask(t, eng)

	fault.Lookup("stream.resolve").Arm(fault.Behavior{Kind: fault.KindError, Count: 1})
	d := Delta{Seq: 1, Kind: RewardChanged, TaskID: taskID, Reward: 3}
	res, err := eng.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveCold {
		t.Fatalf("resolve = %q, want %q", res.Resolve, ResolveCold)
	}
	if res.Audit == nil {
		t.Fatal("cold fallback must carry an audit report")
	}
	if len(res.Audit.Violations) != 0 {
		t.Fatalf("audit violations on fallback: %+v", res.Audit.Violations)
	}
	if res.Degraded != "" {
		t.Fatalf("exact-only fallback reported rung %q", res.Degraded)
	}
	replayed := in.Clone()
	if err := Replay(replayed, d); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 11))
	if got := opt.Metrics.ResolveCold.Value(); got != 1 {
		t.Fatalf("fta_stream_resolves_total{kind=cold} = %d, want 1", got)
	}

	// The failpoint is spent: the next delta takes the warm path and stays
	// pinned.
	d2 := Delta{Seq: 2, Kind: RewardChanged, TaskID: taskID, Reward: 0.5}
	res, err = eng.Apply(context.Background(), d2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveWarm {
		t.Fatalf("post-fallback resolve = %q, want %q", res.Resolve, ResolveWarm)
	}
	if err := Replay(replayed, d2); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 11))
}

// TestApplyFailpointRejects arms stream.apply: ingest is refused before any
// mutation, no sequence number is consumed, and the same delta applies
// cleanly once the failpoint is spent.
func TestApplyFailpointRejects(t *testing.T) {
	defer fault.DisarmAll()
	in := gmInstance(t, 12, 30, 6, 12)
	reg := obs.NewRegistry()
	opt := Options{VDPS: testVDPS, Metrics: obs.NewStreamMetrics(reg)}
	opt.Game.Seed = 12
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	d := Delta{Seq: 1, Kind: RewardChanged, TaskID: in.Points[0].Tasks[0].ID, Reward: 2}

	fault.Lookup("stream.apply").Arm(fault.Behavior{Kind: fault.KindError, Count: 1})
	if _, err := eng.Apply(context.Background(), d); err == nil {
		t.Fatal("armed stream.apply did not reject")
	} else {
		var fe *fault.Error
		if !errors.As(err, &fe) {
			t.Fatalf("rejection not a fault error: %v", err)
		}
	}
	after := eng.Snapshot()
	if after.Seq != before.Seq || !reflect.DeepEqual(after.Summary.Payoffs, before.Summary.Payoffs) {
		t.Fatal("rejected apply mutated engine state")
	}
	if got := opt.Metrics.Rejected.Value(); got != 1 {
		t.Fatalf("fta_stream_rejected_total = %d, want 1", got)
	}
	if _, err := eng.Apply(context.Background(), d); err != nil {
		t.Fatalf("retry after spent failpoint: %v", err)
	}
}

// TestLadderDegradedFallback disables the exact rung, so a mid-delta
// failure degrades through the PR 5 ladder to a sampled solve — audited,
// labeled, and self-healing: the next warm delta re-establishes the exact
// bit-pinned equilibrium.
func TestLadderDegradedFallback(t *testing.T) {
	defer fault.DisarmAll()
	in := gmInstance(t, 13, 60, 10, 24)
	opt := Options{
		VDPS:    testVDPS,
		Degrade: &platform.Degrade{ExactBudget: -1},
	}
	opt.Game.Seed = 13
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	taskID := liveTask(t, eng)

	fault.Lookup("stream.resolve").Arm(fault.Behavior{Kind: fault.KindError, Count: 1})
	d := Delta{Seq: 1, Kind: RewardChanged, TaskID: taskID, Reward: 2.5}
	res, err := eng.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveCold {
		t.Fatalf("resolve = %q, want %q", res.Resolve, ResolveCold)
	}
	if res.Degraded == "" {
		t.Fatal("exact rung disabled, expected a degraded rung label")
	}
	if res.Audit == nil || len(res.Audit.Violations) != 0 {
		t.Fatalf("degraded fallback must pass its audit, got %+v", res.Audit)
	}
	// Self-healing: the next warm resolve lands back on the exact pin.
	d2 := Delta{Seq: 2, Kind: RewardChanged, TaskID: taskID, Reward: 1.5}
	res, err = eng.Apply(context.Background(), d2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveWarm {
		t.Fatalf("post-fallback resolve = %q, want %q", res.Resolve, ResolveWarm)
	}
	replayed := in.Clone()
	if err := Replay(replayed, d, d2); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 13))
}
