// Package stream maintains a live FTA equilibrium under a stream of typed
// instance deltas — task arrivals and expiries, worker churn, reward
// changes — without cold-solving the whole instance per event. The Engine
// holds the current equilibrium together with the solver's warm structures
// (the VDPS candidate generator and per-worker strategy spaces) and, on
// each applied batch, repairs only what the deltas invalidated before
// replaying the deterministic best-response (FGT) or evolutionary (IEGT)
// dynamics. Because the repaired structures are bit-identical to the ones a
// cold solve of the mutated instance would build, and the dynamics replay
// from the same seeded initialization, the warm equilibrium is bit-exact
// against game.ReferenceFGT / evo.ReferenceIEGT on the same instance — the
// differential tests pin this across seed and delta-sequence sweeps. See
// docs/STREAMING.md.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fairtask/internal/geo"
	"fairtask/internal/model"
)

// Kind discriminates stream deltas. The string values are the wire format
// of the HTTP event-ingest API (POST /stream/events) and the kind labels of
// the fta_stream_deltas_total metric.
type Kind string

// The delta grammar: everything that can change mid-stream about an FTA
// instance. Delivery points and the travel model are fixed for an engine's
// lifetime; replace the engine to change them.
const (
	// TaskArrived adds a task to an existing delivery point.
	TaskArrived Kind = "task_arrived"
	// TaskExpired removes a task (deadline passed or canceled upstream).
	TaskExpired Kind = "task_expired"
	// WorkerOnline adds a worker to the roster.
	WorkerOnline Kind = "worker_online"
	// WorkerOffline removes a worker from the roster.
	WorkerOffline Kind = "worker_offline"
	// RewardChanged re-prices an existing task (surge pricing, promotions).
	RewardChanged Kind = "reward_changed"
)

// Delta is one stream event. Every delta carries a strictly increasing
// sequence number; which of the remaining fields are read depends on Kind.
type Delta struct {
	// Seq orders the stream. The engine rejects any delta whose Seq is not
	// strictly greater than the last applied one, so duplicates and
	// reorderings fail deterministically instead of corrupting state.
	Seq uint64 `json:"seq"`
	// Kind selects the mutation.
	Kind Kind `json:"kind"`
	// At is the event's stream time in hours, carried for reporting; the
	// engine does not interpret it.
	At float64 `json:"at,omitempty"`

	// TaskID identifies the task for TaskArrived (must be fresh),
	// TaskExpired and RewardChanged (must exist).
	TaskID int `json:"task_id,omitempty"`
	// Point is the delivery-point index a TaskArrived task is delivered to.
	Point int `json:"point,omitempty"`
	// Expiry is the arriving task's absolute deadline in hours.
	Expiry float64 `json:"expiry,omitempty"`
	// Reward is the task payment: the arriving task's for TaskArrived, the
	// new price for RewardChanged.
	Reward float64 `json:"reward,omitempty"`

	// WorkerID identifies the worker for WorkerOnline (must be fresh) and
	// WorkerOffline (must exist).
	WorkerID int `json:"worker_id,omitempty"`
	// Loc, MaxDP, Priority, Contribution and Speed describe a WorkerOnline
	// arrival, with the same semantics as model.Worker.
	Loc          geo.Point `json:"loc,omitempty"`
	MaxDP        int       `json:"max_dp,omitempty"`
	Priority     float64   `json:"priority,omitempty"`
	Contribution float64   `json:"contribution,omitempty"`
	Speed        float64   `json:"speed,omitempty"`
}

// Deterministic rejection errors. All are detected before any engine state
// is mutated; a rejected delta consumes no sequence number.
var (
	// ErrStaleSeq rejects a delta whose sequence number is not strictly
	// greater than the last applied one (duplicate or out-of-order event).
	ErrStaleSeq = errors.New("stream: stale or duplicate event sequence")
	// ErrUnknownKind rejects a delta with an unrecognized Kind.
	ErrUnknownKind = errors.New("stream: unknown delta kind")
	// ErrUnknownTask rejects TaskExpired/RewardChanged for an absent task.
	ErrUnknownTask = errors.New("stream: unknown task")
	// ErrUnknownWorker rejects WorkerOffline for an absent worker.
	ErrUnknownWorker = errors.New("stream: unknown worker")
	// ErrUnknownPoint rejects TaskArrived at an out-of-range point index.
	ErrUnknownPoint = errors.New("stream: delivery point out of range")
	// ErrDuplicateTask rejects TaskArrived reusing an existing task ID.
	ErrDuplicateTask = errors.New("stream: duplicate task id")
	// ErrDuplicateWorker rejects WorkerOnline reusing an existing worker ID.
	ErrDuplicateWorker = errors.New("stream: duplicate worker id")
	// ErrBadDelta rejects a delta with invalid field values (non-positive
	// expiry, negative or non-finite reward, and the like).
	ErrBadDelta = errors.New("stream: invalid delta")
)

// Replay applies the deltas to the instance in order, mutating it in place,
// and returns the first rejection. It is the defining semantics of the
// delta grammar: the engine's differential tests pin a warm engine against
// a cold solve of a replayed instance, so Replay and the engine can never
// disagree about what a delta means. Sequence numbers are not checked here;
// ordering is the caller's responsibility.
func Replay(in *model.Instance, ds ...Delta) error {
	var plan repairPlan
	for i := range ds {
		if err := applyDelta(in, ds[i], &plan); err != nil {
			return err
		}
	}
	return nil
}

// repairPlan accumulates, across one staged batch, which parts of the
// instance the game-visible inputs could have changed in: the pre-batch
// signature of every touched delivery point and whether the worker roster
// changed. Comparing signatures after the whole batch (rather than flagging
// per delta) lets mutually canceling deltas — a task arriving and expiring
// in one batch — settle back to a no-op.
type repairPlan struct {
	base           map[int]pointSig
	workersChanged bool
}

// pointSig is the game-visible signature of one delivery point: the solvers
// read points only through EarliestExpiry (candidate feasibility) and
// TotalReward (candidate reward).
type pointSig struct {
	expiry, reward float64
}

// touch records point p's signature before its first mutation in the batch.
func (pl *repairPlan) touch(in *model.Instance, p int) {
	if pl.base == nil {
		pl.base = make(map[int]pointSig)
	}
	if _, ok := pl.base[p]; !ok {
		pl.base[p] = pointSig{
			expiry: in.Points[p].EarliestExpiry(),
			reward: in.Points[p].TotalReward(),
		}
	}
}

// diff compares the touched points' signatures against the staged instance:
// rewardPoints lists (ascending) the points whose total reward changed
// bitwise, and expiryPoints those whose earliest expiry changed bitwise —
// the points whose candidates the DP must regenerate (vdps.RepairExpiries).
func (pl *repairPlan) diff(in *model.Instance) (rewardPoints, expiryPoints []int) {
	if len(pl.base) == 0 {
		return nil, nil
	}
	pts := make([]int, 0, len(pl.base))
	for p := range pl.base {
		pts = append(pts, p)
	}
	sort.Ints(pts)
	for _, p := range pts {
		sig := pl.base[p]
		if in.Points[p].EarliestExpiry() != sig.expiry {
			expiryPoints = append(expiryPoints, p)
		}
		if in.Points[p].TotalReward() != sig.reward {
			rewardPoints = append(rewardPoints, p)
		}
	}
	return rewardPoints, expiryPoints
}

// applyDelta mutates in according to d, folding the touched state into the
// plan. Rejections leave the instance unchanged.
func applyDelta(in *model.Instance, d Delta, plan *repairPlan) error {
	switch d.Kind {
	case TaskArrived:
		if d.Point < 0 || d.Point >= len(in.Points) {
			return fmt.Errorf("%w: task %d at point %d of %d", ErrUnknownPoint, d.TaskID, d.Point, len(in.Points))
		}
		if p, _, ok := findTask(in, d.TaskID); ok {
			return fmt.Errorf("%w: task %d already at point %d", ErrDuplicateTask, d.TaskID, p)
		}
		if !(d.Expiry > 0) || math.IsInf(d.Expiry, 0) {
			return fmt.Errorf("%w: task %d expiry %v", ErrBadDelta, d.TaskID, d.Expiry)
		}
		if d.Reward < 0 || math.IsInf(d.Reward, 0) || math.IsNaN(d.Reward) {
			return fmt.Errorf("%w: task %d reward %v", ErrBadDelta, d.TaskID, d.Reward)
		}
		plan.touch(in, d.Point)
		in.Points[d.Point].Tasks = append(in.Points[d.Point].Tasks, model.Task{
			ID: d.TaskID, Point: d.Point, Expiry: d.Expiry, Reward: d.Reward,
		})
		return nil

	case TaskExpired:
		p, ti, ok := findTask(in, d.TaskID)
		if !ok {
			return fmt.Errorf("%w: task %d", ErrUnknownTask, d.TaskID)
		}
		plan.touch(in, p)
		tasks := in.Points[p].Tasks
		in.Points[p].Tasks = append(tasks[:ti], tasks[ti+1:]...)
		return nil

	case RewardChanged:
		p, ti, ok := findTask(in, d.TaskID)
		if !ok {
			return fmt.Errorf("%w: task %d", ErrUnknownTask, d.TaskID)
		}
		if d.Reward < 0 || math.IsInf(d.Reward, 0) || math.IsNaN(d.Reward) {
			return fmt.Errorf("%w: task %d reward %v", ErrBadDelta, d.TaskID, d.Reward)
		}
		plan.touch(in, p)
		in.Points[p].Tasks[ti].Reward = d.Reward
		return nil

	case WorkerOnline:
		if w := findWorker(in, d.WorkerID); w >= 0 {
			return fmt.Errorf("%w: worker %d", ErrDuplicateWorker, d.WorkerID)
		}
		if d.MaxDP < 0 || d.Speed < 0 || d.Priority < 0 || d.Contribution < 0 {
			return fmt.Errorf("%w: worker %d has negative attributes", ErrBadDelta, d.WorkerID)
		}
		if math.IsNaN(d.Loc.X) || math.IsInf(d.Loc.X, 0) || math.IsNaN(d.Loc.Y) || math.IsInf(d.Loc.Y, 0) {
			return fmt.Errorf("%w: worker %d location %v", ErrBadDelta, d.WorkerID, d.Loc)
		}
		plan.workersChanged = true
		in.Workers = append(in.Workers, model.Worker{
			ID: d.WorkerID, Loc: d.Loc, MaxDP: d.MaxDP,
			Priority: d.Priority, Contribution: d.Contribution, Speed: d.Speed,
		})
		return nil

	case WorkerOffline:
		w := findWorker(in, d.WorkerID)
		if w < 0 {
			return fmt.Errorf("%w: worker %d", ErrUnknownWorker, d.WorkerID)
		}
		plan.workersChanged = true
		in.Workers = append(in.Workers[:w], in.Workers[w+1:]...)
		return nil
	}
	return fmt.Errorf("%w: %q", ErrUnknownKind, d.Kind)
}

// findTask locates a task by ID, returning its point index, its position in
// the point's task list, and whether it exists.
func findTask(in *model.Instance, id int) (point, ti int, ok bool) {
	for p := range in.Points {
		for i := range in.Points[p].Tasks {
			if in.Points[p].Tasks[i].ID == id {
				return p, i, true
			}
		}
	}
	return -1, -1, false
}

// findWorker locates a worker by ID, returning its index or -1.
func findWorker(in *model.Instance, id int) int {
	for w := range in.Workers {
		if in.Workers[w].ID == id {
			return w
		}
	}
	return -1
}
