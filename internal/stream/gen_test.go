package stream

import (
	"context"
	"reflect"
	"testing"
)

// TestGenerateStreamDeterministic pins the generator: equal seeds yield
// bit-identical streams, different seeds diverge.
func TestGenerateStreamDeterministic(t *testing.T) {
	in := gmInstance(t, 21, 40, 8, 16)
	cfg := StreamConfig{Seed: 5, Rate: 30, Duration: 1, ChurnRate: 4, RepriceRate: 10}
	a, err := GenerateStream(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	cfg.Seed = 6
	c, err := GenerateStream(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestGenerateStreamWellFormed checks stream invariants: strictly
// increasing sequence numbers, non-decreasing event times inside the
// horizon, and a full replay with no rejections — both standalone and
// through a live engine.
func TestGenerateStreamWellFormed(t *testing.T) {
	in := gmInstance(t, 22, 40, 8, 16)
	ds, err := GenerateStream(in, StreamConfig{
		Seed: 9, Rate: 40, Duration: 1.5, ChurnRate: 6, RepriceRate: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) < 20 {
		t.Fatalf("suspiciously short stream: %d deltas", len(ds))
	}
	for i := range ds {
		if ds[i].Seq != uint64(i+1) {
			t.Fatalf("delta %d has seq %d", i, ds[i].Seq)
		}
		if i > 0 && ds[i].At < ds[i-1].At {
			t.Fatalf("delta %d out of time order", i)
		}
		if ds[i].At < 0 || ds[i].At >= 1.5 {
			t.Fatalf("delta %d at %v outside horizon", i, ds[i].At)
		}
	}
	if err := Replay(in.Clone(), ds...); err != nil {
		t.Fatalf("replay rejected generated stream: %v", err)
	}
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 22
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyAll(context.Background(), ds); err != nil {
		t.Fatalf("engine rejected generated stream: %v", err)
	}
	if got := eng.Snapshot().Seq; got != uint64(len(ds)) {
		t.Fatalf("engine seq %d after %d deltas", got, len(ds))
	}
}

// TestGenerateStreamValidation pins the config rejections.
func TestGenerateStreamValidation(t *testing.T) {
	in := gmInstance(t, 23, 20, 4, 8)
	if _, err := GenerateStream(in, StreamConfig{Rate: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := GenerateStream(in, StreamConfig{Rate: -1, Duration: 1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	noPoints := in.Clone()
	noPoints.Points = nil
	if _, err := GenerateStream(noPoints, StreamConfig{Rate: 1, Duration: 1}); err == nil {
		t.Fatal("arrivals without points accepted")
	}
	noWorkers := in.Clone()
	noWorkers.Workers = nil
	if _, err := GenerateStream(noWorkers, StreamConfig{ChurnRate: 1, Duration: 1}); err == nil {
		t.Fatal("churn without workers accepted")
	}
}
