package stream

import "fairtask/internal/fault"

// fpApply is hit after sequence validation and before any staging, so an
// armed failure rejects the batch with no state mutated and no sequence
// number consumed — the "ingest refused" chaos scenario.
var fpApply = fault.Point("stream.apply")

// fpResolve is hit at the start of the equilibrium re-solve, after the
// staged instance and repaired structures are built. An armed failure
// abandons the warm path and degrades the batch to a cold re-solve through
// the platform ladder (see Engine.fallback) — the "mid-delta failure" chaos
// scenario: the batch still commits, bit-exact or ladder-audited.
var fpResolve = fault.Point("stream.resolve")

// fpRepair is hit at the start of an incremental candidate regeneration
// (vdps.RepairExpiries), after the batch staged cleanly. An armed failure
// abandons the in-place repair and degrades the batch to an audited cold
// re-solve through the platform ladder, with the warm structures rebuilt
// afterwards so the next batch is warm again — the "repair machinery broke
// mid-surgery" chaos scenario.
var fpRepair = fault.Point("stream.repair")
