package stream

import (
	"context"
	"sort"
	"testing"
	"time"

	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

// benchSetup builds the DP-heavy regime where incremental repair pays off:
// many delivery points (candidate generation dominates a cold solve), few
// workers (dynamics stay cheap), and a reprice-only stream (every delta
// takes the warm path).
func benchSetup(b *testing.B) (*Engine, []Delta) {
	b.Helper()
	in := gmInstance(b, 7, 360, 8, 120)
	ds, err := GenerateStream(in, StreamConfig{Seed: 7, Duration: 1, RepriceRate: 25})
	if err != nil {
		b.Fatal(err)
	}
	if len(ds) == 0 {
		b.Fatal("empty benchmark stream")
	}
	opt := Options{VDPS: benchVDPS()}
	opt.Game.Seed = 7
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		b.Fatal(err)
	}
	return eng, ds
}

func benchVDPS() vdps.Options { return vdps.Options{Epsilon: 1.5} }

// BenchmarkStreamApply measures per-delta warm applies and reports the
// latency distribution and repair locality:
//
//	p50-ns/delta, p99-ns/delta    delta-apply latency percentiles
//	workers-touched/delta         strategy rebuild footprint per delta
func BenchmarkStreamApply(b *testing.B) {
	eng, ds := benchSetup(b)
	lat := make([]float64, 0, b.N*len(ds))
	var touched, applied int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			d.Seq = uint64(applied + 1)
			start := time.Now()
			res, err := eng.Apply(context.Background(), d)
			if err != nil {
				b.Fatal(err)
			}
			lat = append(lat, float64(time.Since(start).Nanoseconds()))
			touched += res.WorkersTouched
			applied++
		}
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(lat[len(lat)*50/100], "p50-ns/delta")
	b.ReportMetric(lat[min(len(lat)-1, len(lat)*99/100)], "p99-ns/delta")
	b.ReportMetric(float64(touched)/float64(applied), "workers-touched/delta")
}

// BenchmarkStreamStrategyRepair isolates the warm path's strategy-space
// maintenance on the reprice-heavy regime: re-keying a worker's cached
// strategy list in place (vdps.RepairStrategyPayoffs) versus re-enumerating
// it from the candidate table (vdps.WorkerStrategies), which is what the
// warm path did before in-place repair existed. Reports speedup-x =
// mean enumeration / mean repair.
func BenchmarkStreamStrategyRepair(b *testing.B) {
	eng, _ := benchSetup(b)
	gen := eng.gen
	in := eng.inst
	var sc vdps.StrategyScratch
	cached := make([][]vdps.StrategyRef, len(in.Workers))
	for w := range in.Workers {
		cached[w] = append([]vdps.StrategyRef(nil), gen.WorkerStrategies(w, &sc)...)
	}
	var repairNS, enumNS float64
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-price one point per round, exactly like a RewardChanged delta.
		p := i % len(in.Points)
		for t := range in.Points[p].Tasks {
			in.Points[p].Tasks[t].Reward += 0.25
		}
		changed := gen.RepairRewards([]int{p})
		if len(changed) == 0 {
			continue
		}
		for w := range in.Workers {
			start := time.Now()
			gen.RepairStrategyPayoffs(w, cached[w], changed, &sc)
			repairNS += float64(time.Since(start).Nanoseconds())
			start = time.Now()
			want := gen.WorkerStrategies(w, &sc)
			enumNS += float64(time.Since(start).Nanoseconds())
			if len(want) != len(cached[w]) {
				b.Fatal("repair and enumeration disagree")
			}
			n++
		}
	}
	b.StopTimer()
	if n == 0 {
		b.Skip("no reprice changed a candidate")
	}
	b.ReportMetric(repairNS/float64(n), "repair-ns/worker")
	b.ReportMetric(enumNS/float64(n), "enum-ns/worker")
	b.ReportMetric(enumNS/repairNS, "speedup-x")
}

// benchExpirySetup builds the expiry-heavy regime: short-lived arrivals
// whose deadlines undercut the standing earliest expiries and then expire
// mid-stream, so most deltas invalidate candidates and route through the
// regen path. Worker churn stays off: every regen is the incremental repair.
func benchExpirySetup(b *testing.B) (*Engine, []Delta) {
	b.Helper()
	in := gmInstance(b, 7, 360, 8, 120)
	ds, err := GenerateStream(in, StreamConfig{Seed: 7, Rate: 40, Duration: 1, Lifetime: 0.4})
	if err != nil {
		b.Fatal(err)
	}
	if len(ds) == 0 {
		b.Fatal("empty benchmark stream")
	}
	opt := Options{VDPS: benchVDPS()}
	opt.Game.Seed = 7
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		b.Fatal(err)
	}
	return eng, ds
}

// BenchmarkStreamIncrementalRegen pins the incremental candidate repair
// against a full candidate-DP re-run on the same expiry-moving deltas: two
// engines apply the identical stream, with the second forced to regenerate
// from scratch (its warm structures marked dirty) exactly at the deltas the
// first served incrementally. Reports speedup-x = mean full / mean
// incremental.
func BenchmarkStreamIncrementalRegen(b *testing.B) {
	var incNS, fullNS float64
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inc, ds := benchExpirySetup(b)
		full, _ := benchExpirySetup(b)
		b.StartTimer()
		for _, d := range ds {
			start := time.Now()
			res, err := inc.Apply(context.Background(), d)
			if err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start)
			if res.Resolve != ResolveRegen {
				// Keep the twin in lockstep without timing it.
				if _, err := full.Apply(context.Background(), d); err != nil {
					b.Fatal(err)
				}
				continue
			}
			incNS += float64(elapsed.Nanoseconds())
			full.dirty = true // force the full candidate-DP path
			start = time.Now()
			fres, err := full.Apply(context.Background(), d)
			if err != nil {
				b.Fatal(err)
			}
			fullNS += float64(time.Since(start).Nanoseconds())
			if fres.Resolve != ResolveRegen {
				b.Fatalf("forced full regen resolved %q", fres.Resolve)
			}
			n++
		}
	}
	b.StopTimer()
	if n == 0 {
		b.Fatal("stream produced no regen resolves")
	}
	b.ReportMetric(incNS/float64(n), "inc-ns/regen")
	b.ReportMetric(fullNS/float64(n), "full-ns/regen")
	b.ReportMetric(fullNS/incNS, "speedup-x")
}

// BenchmarkStreamContinuation measures continuation-seeded dynamics against
// the default bit-pinned replay on the reprice-heavy regime: twin engines
// apply the identical stream, one with Continue on. Reports the per-delta
// latency of both modes, the dynamics rounds saved per continuation resolve
// and the fraction of resolves served by a certified continuation.
func BenchmarkStreamContinuation(b *testing.B) {
	var contNS, replayNS float64
	var saved, conts, applied int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		replay, ds := benchSetup(b)
		in := replay.Snapshot().Instance
		opt := Options{VDPS: benchVDPS(), Continue: true}
		opt.Game.Seed = 7
		cont, err := New(context.Background(), in, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, d := range ds {
			start := time.Now()
			res, err := cont.Apply(context.Background(), d)
			if err != nil {
				b.Fatal(err)
			}
			contNS += float64(time.Since(start).Nanoseconds())
			if res.Resolve == ResolveContinuation {
				conts++
				saved += res.IterationsSaved
			}
			start = time.Now()
			if _, err := replay.Apply(context.Background(), d); err != nil {
				b.Fatal(err)
			}
			replayNS += float64(time.Since(start).Nanoseconds())
			applied++
		}
	}
	b.StopTimer()
	b.ReportMetric(contNS/float64(applied), "cont-ns/delta")
	b.ReportMetric(replayNS/float64(applied), "replay-ns/delta")
	if conts > 0 {
		b.ReportMetric(float64(saved)/float64(conts), "iters-saved/cont")
	}
	b.ReportMetric(float64(conts)/float64(applied), "cont-fraction")
}

// BenchmarkStreamWarmVsCold pins the tentpole claim: applying a delta to the
// warm engine versus cold-solving the mutated instance from scratch, on the
// same delta sequence. Reports speedup-x = mean cold / mean warm.
func BenchmarkStreamWarmVsCold(b *testing.B) {
	var warmNS, coldNS float64
	var warmN, coldN int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, ds := benchSetup(b)
		base := eng.Snapshot().Instance
		for j, d := range ds {
			start := time.Now()
			if _, err := eng.Apply(context.Background(), d); err != nil {
				b.Fatal(err)
			}
			warmNS += float64(time.Since(start).Nanoseconds())
			warmN++
			// Cold baseline on three sampled prefixes, not every delta — a
			// full per-delta cold sweep would dominate the benchmark run.
			if (j+1)%(len(ds)/3+1) != 0 {
				continue
			}
			replayed := base.Clone()
			if err := Replay(replayed, ds[:j+1]...); err != nil {
				b.Fatal(err)
			}
			start = time.Now()
			g, err := vdps.Generate(replayed, benchVDPS())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := game.ReferenceFGT(context.Background(), g, game.Options{Seed: 7}); err != nil {
				b.Fatal(err)
			}
			coldNS += float64(time.Since(start).Nanoseconds())
			coldN++
		}
	}
	b.StopTimer()
	warm := warmNS / float64(warmN)
	cold := coldNS / float64(coldN)
	b.ReportMetric(warm, "warm-ns/delta")
	b.ReportMetric(cold, "cold-ns/solve")
	b.ReportMetric(cold/warm, "speedup-x")
}
