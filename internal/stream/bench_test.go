package stream

import (
	"context"
	"sort"
	"testing"
	"time"

	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

// benchSetup builds the DP-heavy regime where incremental repair pays off:
// many delivery points (candidate generation dominates a cold solve), few
// workers (dynamics stay cheap), and a reprice-only stream (every delta
// takes the warm path).
func benchSetup(b *testing.B) (*Engine, []Delta) {
	b.Helper()
	in := gmInstance(b, 7, 360, 8, 120)
	ds, err := GenerateStream(in, StreamConfig{Seed: 7, Duration: 1, RepriceRate: 25})
	if err != nil {
		b.Fatal(err)
	}
	if len(ds) == 0 {
		b.Fatal("empty benchmark stream")
	}
	opt := Options{VDPS: benchVDPS()}
	opt.Game.Seed = 7
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		b.Fatal(err)
	}
	return eng, ds
}

func benchVDPS() vdps.Options { return vdps.Options{Epsilon: 1.5} }

// BenchmarkStreamApply measures per-delta warm applies and reports the
// latency distribution and repair locality:
//
//	p50-ns/delta, p99-ns/delta    delta-apply latency percentiles
//	workers-touched/delta         strategy rebuild footprint per delta
func BenchmarkStreamApply(b *testing.B) {
	eng, ds := benchSetup(b)
	lat := make([]float64, 0, b.N*len(ds))
	var touched, applied int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			d.Seq = uint64(applied + 1)
			start := time.Now()
			res, err := eng.Apply(context.Background(), d)
			if err != nil {
				b.Fatal(err)
			}
			lat = append(lat, float64(time.Since(start).Nanoseconds()))
			touched += res.WorkersTouched
			applied++
		}
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(lat[len(lat)*50/100], "p50-ns/delta")
	b.ReportMetric(lat[min(len(lat)-1, len(lat)*99/100)], "p99-ns/delta")
	b.ReportMetric(float64(touched)/float64(applied), "workers-touched/delta")
}

// BenchmarkStreamWarmVsCold pins the tentpole claim: applying a delta to the
// warm engine versus cold-solving the mutated instance from scratch, on the
// same delta sequence. Reports speedup-x = mean cold / mean warm.
func BenchmarkStreamWarmVsCold(b *testing.B) {
	var warmNS, coldNS float64
	var warmN, coldN int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, ds := benchSetup(b)
		base := eng.Snapshot().Instance
		for j, d := range ds {
			start := time.Now()
			if _, err := eng.Apply(context.Background(), d); err != nil {
				b.Fatal(err)
			}
			warmNS += float64(time.Since(start).Nanoseconds())
			warmN++
			// Cold baseline on three sampled prefixes, not every delta — a
			// full per-delta cold sweep would dominate the benchmark run.
			if (j+1)%(len(ds)/3+1) != 0 {
				continue
			}
			replayed := base.Clone()
			if err := Replay(replayed, ds[:j+1]...); err != nil {
				b.Fatal(err)
			}
			start = time.Now()
			g, err := vdps.Generate(replayed, benchVDPS())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := game.ReferenceFGT(context.Background(), g, game.Options{Seed: 7}); err != nil {
				b.Fatal(err)
			}
			coldNS += float64(time.Since(start).Nanoseconds())
			coldN++
		}
	}
	b.StopTimer()
	warm := warmNS / float64(warmN)
	cold := coldNS / float64(coldN)
	b.ReportMetric(warm, "warm-ns/delta")
	b.ReportMetric(cold, "cold-ns/solve")
	b.ReportMetric(cold/warm, "speedup-x")
}
