package stream

import (
	"context"
	"math"
	"testing"

	"fairtask/internal/fault"
	"fairtask/internal/obs"
)

// TestIncrementalRepairDifferential is the incremental-regen acceptance
// sweep: across seeds, scales and both dynamics, an expiry-moving stream must
// route through the incremental candidate repair (worker churn is off, so no
// full regeneration can occur) and stay bit-identical to cold reference
// solves of the replayed instance at every checkpoint.
func TestIncrementalRepairDifferential(t *testing.T) {
	scales := []struct{ tasks, workers, points int }{
		{40, 6, 16},
		{80, 12, 28},
	}
	for _, alg := range []Algorithm{FGT, IEGT} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				for si, sc := range scales {
					in := gmInstance(t, seed, sc.tasks, sc.workers, sc.points)
					opt := Options{Algorithm: alg, VDPS: testVDPS}
					opt.Game.Seed, opt.Evo.Seed = seed, seed
					eng, err := New(context.Background(), in, opt)
					if err != nil {
						t.Fatal(err)
					}
					ds, err := GenerateStream(in, StreamConfig{
						Seed: seed*77 + int64(si), Rate: 30, Duration: 1,
						Lifetime: 0.4, RepriceRate: 8,
					})
					if err != nil {
						t.Fatal(err)
					}
					regens := 0
					for i, d := range ds {
						res, err := eng.Apply(context.Background(), d)
						if err != nil {
							t.Fatalf("seed %d scale %d delta %d (%s): %v", seed, si, i, d.Kind, err)
						}
						if res.Resolve == ResolveRegen {
							regens++
						}
						if res.Resolve == ResolveCold {
							t.Fatalf("seed %d scale %d delta %d: unexpected cold fallback", seed, si, i)
						}
						if (i+1)%7 != 0 && i != len(ds)-1 {
							continue
						}
						replayed := in.Clone()
						if err := Replay(replayed, ds[:i+1]...); err != nil {
							t.Fatal(err)
						}
						assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, alg, seed))
					}
					if regens == 0 {
						t.Fatalf("seed %d scale %d: expiry-heavy stream produced no regen resolves", seed, si)
					}
				}
			}
		})
	}
}

// expiryMovingDelta finds a task whose expiry pins its point's earliest
// expiry uniquely, so expiring it is guaranteed to move the signature and
// force the incremental-regen path.
func expiryMovingDelta(t *testing.T, eng *Engine, seq uint64) Delta {
	t.Helper()
	snap := eng.Snapshot()
	for p := range snap.Instance.Points {
		tasks := snap.Instance.Points[p].Tasks
		if len(tasks) < 2 {
			continue
		}
		minI := 0
		for i := range tasks {
			if tasks[i].Expiry < tasks[minI].Expiry {
				minI = i
			}
		}
		unique := true
		for i := range tasks {
			if i != minI && tasks[i].Expiry == tasks[minI].Expiry {
				unique = false
			}
		}
		if unique {
			return Delta{Seq: seq, Kind: TaskExpired, TaskID: tasks[minI].ID}
		}
	}
	t.Skip("no point with a unique minimum-expiry task")
	return Delta{}
}

// TestRepairFailpointColdFallback arms the stream.repair failpoint: the
// incremental candidate regeneration is refused mid-surgery, the engine
// degrades to an audited cold solve, the batch still commits bit-exactly,
// and the next expiry-moving delta runs the (rebuilt) incremental path again.
func TestRepairFailpointColdFallback(t *testing.T) {
	defer fault.DisarmAll()
	in := gmInstance(t, 14, 60, 10, 24)
	reg := obs.NewRegistry()
	opt := Options{VDPS: testVDPS, Metrics: obs.NewStreamMetrics(reg)}
	opt.Game.Seed = 14
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}

	fault.Lookup("stream.repair").Arm(fault.Behavior{Kind: fault.KindError, Count: 1})
	d := expiryMovingDelta(t, eng, 1)
	res, err := eng.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveCold {
		t.Fatalf("resolve = %q, want %q", res.Resolve, ResolveCold)
	}
	if res.Audit == nil || len(res.Audit.Violations) != 0 {
		t.Fatalf("cold fallback must pass its audit, got %+v", res.Audit)
	}
	replayed := in.Clone()
	if err := Replay(replayed, d); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 14))
	if got := opt.Metrics.ResolveCold.Value(); got != 1 {
		t.Fatalf("fta_stream_resolves_total{kind=cold} = %d, want 1", got)
	}

	// The failpoint is spent and the warm structures were rebuilt: the next
	// expiry move takes the incremental path and stays pinned.
	d2 := expiryMovingDelta(t, eng, 2)
	res, err = eng.Apply(context.Background(), d2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveRegen {
		t.Fatalf("post-fallback resolve = %q, want %q", res.Resolve, ResolveRegen)
	}
	if err := Replay(replayed, d2); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 14))
}

// TestWorkersTouchedRepairCounts is the regression test for the repair blast
// radius: every resolve path counts rebuilt plus departed workers, so a
// shrinking roster is visible in WorkersTouched whether the departure lands
// on the warm path or forces a full regeneration.
func TestWorkersTouchedRepairCounts(t *testing.T) {
	in := gmInstance(t, 15, 60, 10, 24)
	// Give one worker a strictly larger set-size appetite: taking it offline
	// moves EffectiveMaxSize and forces the full-regen path.
	in.Workers[0].MaxDP = 4
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 15
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Warm-path departure: the cap is pinned by worker 0, so dropping a
	// MaxDP-3 worker repairs nothing — only the departure itself counts.
	res, err := eng.Apply(context.Background(), Delta{Seq: 1, Kind: WorkerOffline, WorkerID: in.Workers[1].ID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveWarm {
		t.Fatalf("resolve = %q, want %q", res.Resolve, ResolveWarm)
	}
	if res.WorkersTouched != 1 {
		t.Fatalf("warm departure WorkersTouched = %d, want 1", res.WorkersTouched)
	}

	// Regen-path departure: dropping the unique MaxDP-4 worker shrinks the
	// candidate size cap, so the whole roster rebuilds and the departed
	// worker still counts on top.
	res, err = eng.Apply(context.Background(), Delta{Seq: 2, Kind: WorkerOffline, WorkerID: in.Workers[0].ID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolve != ResolveRegen {
		t.Fatalf("resolve = %q, want %q", res.Resolve, ResolveRegen)
	}
	if want := len(in.Workers) - 2 + 1; res.WorkersTouched != want {
		t.Fatalf("regen departure WorkersTouched = %d, want %d (roster %d + departed 1)",
			res.WorkersTouched, want, len(in.Workers)-2)
	}

	replayed := in.Clone()
	if err := Replay(replayed,
		Delta{Seq: 1, Kind: WorkerOffline, WorkerID: in.Workers[1].ID},
		Delta{Seq: 2, Kind: WorkerOffline, WorkerID: in.Workers[0].ID},
	); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 15))
}

// TestContinuationDifferential pins the continuation value contract on a
// regime where the equilibrium is unique in payoff terms: reprice-only
// streams over compact instances (20 tasks, 4 workers, 8 points). There a
// continuation-seeded run must land on the same P_dif and average payoff as
// a cold reference solve, within the audit tolerance, across five seeds per
// algorithm — while every continuation resolve carries its passing audit
// certificate. On larger mixed streams the game has multiple equilibria with
// genuinely different P_dif, so value parity is not part of the contract
// there; TestContinuationAudited covers that regime.
func TestContinuationDifferential(t *testing.T) {
	const tol = 1e-6 // audit.Options.Tolerance default
	seedsFor := map[Algorithm][]int64{
		FGT:  {4, 6, 13, 17, 18},
		IEGT: {4, 6, 11, 13, 18},
	}
	for _, alg := range []Algorithm{FGT, IEGT} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			continuations := 0
			for _, seed := range seedsFor[alg] {
				in := gmInstance(t, seed, 20, 4, 8)
				reg := obs.NewRegistry()
				opt := Options{
					Algorithm: alg, VDPS: testVDPS, Continue: true,
					Metrics: obs.NewStreamMetrics(reg),
				}
				opt.Game.Seed, opt.Evo.Seed = seed, seed
				eng, err := New(context.Background(), in, opt)
				if err != nil {
					t.Fatal(err)
				}
				ds, err := GenerateStream(in, StreamConfig{
					Seed: seed * 909, RepriceRate: 15, Duration: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, d := range ds {
					res, err := eng.Apply(context.Background(), d)
					if err != nil {
						t.Fatalf("seed %d delta %d (%s): %v", seed, i, d.Kind, err)
					}
					if res.Resolve == ResolveContinuation {
						continuations++
						if res.Audit == nil || len(res.Audit.Violations) != 0 {
							t.Fatalf("seed %d delta %d: continuation certificate %+v", seed, i, res.Audit)
						}
					}
					if (i+1)%9 != 0 && i != len(ds)-1 {
						continue
					}
					replayed := in.Clone()
					if err := Replay(replayed, ds[:i+1]...); err != nil {
						t.Fatal(err)
					}
					snap, ref := eng.Snapshot(), coldReference(t, replayed, alg, seed)
					if math.Abs(snap.Summary.Difference-ref.Summary.Difference) > tol {
						t.Fatalf("seed %d delta %d: P_dif %v vs cold %v beyond audit tolerance",
							seed, i, snap.Summary.Difference, ref.Summary.Difference)
					}
					if math.Abs(snap.Summary.Average-ref.Summary.Average) > tol {
						t.Fatalf("seed %d delta %d: avg payoff %v vs cold %v beyond audit tolerance",
							seed, i, snap.Summary.Average, ref.Summary.Average)
					}
				}
			}
			if continuations == 0 {
				t.Fatal("sweep produced no continuation resolves")
			}
		})
	}
}

// TestContinuationAudited is the broad continuation sweep on the generic
// mixed stream: with Continue on, every resolve either keeps the bit-pinned
// contract (noop, warm, regen after a failed certification) or carries a
// passing audit certificate with a non-negative iterations-saved figure, and
// the continuation metrics count what happened.
func TestContinuationAudited(t *testing.T) {
	for _, alg := range []Algorithm{FGT, IEGT} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			continuations := 0
			for seed := int64(1); seed <= 5; seed++ {
				in := gmInstance(t, seed, 60, 10, 24)
				reg := obs.NewRegistry()
				opt := Options{
					Algorithm: alg, VDPS: testVDPS, Continue: true,
					Metrics: obs.NewStreamMetrics(reg),
				}
				opt.Game.Seed, opt.Evo.Seed = seed, seed
				eng, err := New(context.Background(), in, opt)
				if err != nil {
					t.Fatal(err)
				}
				perEngine := 0
				ds := testStream(t, in, seed*909)
				for i, d := range ds {
					res, err := eng.Apply(context.Background(), d)
					if err != nil {
						t.Fatalf("seed %d delta %d (%s): %v", seed, i, d.Kind, err)
					}
					switch res.Resolve {
					case ResolveContinuation:
						perEngine++
						if res.Audit == nil {
							t.Fatalf("seed %d delta %d: continuation without audit certificate", seed, i)
						}
						if len(res.Audit.Violations) != 0 {
							t.Fatalf("seed %d delta %d: continuation audit violations: %+v",
								seed, i, res.Audit.Violations)
						}
						if res.IterationsSaved < 0 {
							t.Fatalf("seed %d delta %d: negative IterationsSaved", seed, i)
						}
					case ResolveCold:
						t.Fatalf("seed %d delta %d: unexpected cold fallback", seed, i)
					}
				}
				if got := int(opt.Metrics.ResolveContinuation.Value()); got != perEngine {
					t.Fatalf("seed %d: continuation metric %d, saw %d resolves", seed, got, perEngine)
				}
				continuations += perEngine
			}
			if continuations == 0 {
				t.Fatal("sweep produced no continuation resolves")
			}
		})
	}
}

// TestContinuationOffUnchanged pins that the default configuration never
// takes the continuation path: Continue off is the bit-exact contract, and
// the dedicated differential sweeps must keep passing untouched.
func TestContinuationOffUnchanged(t *testing.T) {
	in := gmInstance(t, 16, 40, 8, 16)
	opt := Options{VDPS: testVDPS}
	opt.Game.Seed = 16
	eng, err := New(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	ds := testStream(t, in, 16)
	for i, d := range ds {
		res, err := eng.Apply(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resolve == ResolveContinuation {
			t.Fatalf("delta %d: continuation resolve with Continue off", i)
		}
		if res.IterationsSaved != 0 {
			t.Fatalf("delta %d: IterationsSaved = %d with Continue off", i, res.IterationsSaved)
		}
	}
	replayed := in.Clone()
	if err := Replay(replayed, ds...); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, eng.Snapshot(), coldReference(t, replayed, FGT, 16))
}
