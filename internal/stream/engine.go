package stream

import (
	"context"
	"fmt"
	"time"

	"fairtask/internal/audit"
	"fairtask/internal/evo"
	"fairtask/internal/fault"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/payoff"
	"fairtask/internal/platform"
	"fairtask/internal/vdps"
)

// Algorithm names the dynamics an Engine replays per applied batch.
type Algorithm string

// The supported equilibrium dynamics.
const (
	// FGT replays best-response dynamics (Algorithm 2) per batch.
	FGT Algorithm = "FGT"
	// IEGT replays evolutionary dynamics (Algorithm 3) per batch.
	IEGT Algorithm = "IEGT"
)

// Resolve paths, recorded in Result.Resolve and counted by
// fta_stream_resolves_total.
const (
	// ResolveNoop: nothing the game reads changed; the standing
	// equilibrium was kept without re-running dynamics.
	ResolveNoop = "noop"
	// ResolveWarm: strategy spaces were incrementally repaired and the
	// dynamics replayed over them.
	ResolveWarm = "warm"
	// ResolveRegen: a point's earliest expiry (or the effective candidate
	// size cap) changed, forcing a candidate-DP re-run before the replay.
	ResolveRegen = "regen"
	// ResolveCold: a failpoint or error broke the warm path and the batch
	// was served by an audited cold solve through the platform ladder.
	ResolveCold = "cold"
	// ResolveContinuation: Options.Continue was on and the dynamics were
	// seeded from the previous committed equilibrium instead of the random
	// init, certified by a mandatory audit pass instead of bit-pinning.
	ResolveContinuation = "continuation"
)

// Options configure a streaming Engine.
type Options struct {
	// Algorithm selects the dynamics replayed per applied batch: FGT (the
	// default) or IEGT.
	Algorithm Algorithm
	// VDPS configures candidate generation, for the initial build and for
	// every regeneration.
	VDPS vdps.Options
	// Game configures the FGT dynamics. The same options — in particular
	// the Seed — are replayed on every resolve, which is what pins the
	// warm equilibrium bit-exactly to game.ReferenceFGT on the engine's
	// current instance.
	Game game.Options
	// Evo configures the IEGT dynamics when Algorithm is IEGT, with the
	// same replay semantics against evo.ReferenceIEGT.
	Evo evo.Options
	// Continue seeds each resolve's dynamics from the previous committed
	// equilibrium instead of the seeded random init, typically converging in
	// far fewer rounds on small deltas. Continuation results are NOT
	// bit-pinned against the cold references (a different start can reach a
	// different, equally valid equilibrium), so every continuation resolve
	// is certified by a mandatory internal/audit pass — structure,
	// deadlines, recomputed payoffs/P_dif and the NE/ESS certificate. A
	// resolve whose audit fails (or that hits the iteration cap) falls back
	// to the default bit-pinned replay. Default off: the engine then stays
	// bit-exact against game.ReferenceFGT / evo.ReferenceIEGT. See
	// docs/STREAMING.md for the contract and when to enable it.
	Continue bool
	// Degrade optionally arms the exact→sampled→greedy platform ladder for
	// cold fallbacks. Nil keeps fallbacks exact-only: a fallback that
	// cannot solve exactly fails the Apply (without consuming its
	// sequence numbers).
	Degrade *platform.Degrade
	// Retry retries cold-fallback solve attempts under this policy. Nil
	// disables retrying.
	Retry *fault.RetryPolicy
	// Metrics receives the fta_stream_* instruments. Nil disables.
	Metrics *obs.StreamMetrics
	// Recorder receives solve telemetry from cold fallbacks. Nil disables.
	Recorder obs.Recorder
}

// Result reports what one applied batch did to the engine.
type Result struct {
	// Seq is the last sequence number applied (the batch's highest).
	Seq uint64
	// Applied is the number of deltas in the batch.
	Applied int
	// Resolve is the path that re-established equilibrium: ResolveNoop,
	// ResolveWarm, ResolveRegen, ResolveCold or ResolveContinuation.
	Resolve string
	// WorkersTouched counts workers whose strategy spaces were rebuilt,
	// repaired in place or dropped — the repair blast radius. Every path
	// counts rebuilt plus departed workers identically (full roster plus
	// departures on a full regen or cold fallback).
	WorkersTouched int
	// Summary holds the committed equilibrium's payoff metrics.
	Summary payoff.Summary
	// Iterations and Converged report the committed dynamics run.
	Iterations int
	Converged  bool
	// IterationsSaved is, for a continuation resolve, how many dynamics
	// rounds seeding from the previous equilibrium saved against the most
	// recent random-init resolve on this engine (never negative); zero on
	// every other path.
	IterationsSaved int
	// Degraded names the ladder rung that served a cold fallback
	// ("sampled", "greedy"); empty for full-fidelity results.
	Degraded string
	// Audit holds the independent invariant report of a cold fallback or a
	// continuation resolve; nil on the bit-pinned paths (those results are
	// pinned by the differential tests instead).
	Audit *audit.Report
	// Elapsed is the wall-clock time of the whole Apply.
	Elapsed time.Duration
}

// Snapshot is a self-consistent copy of the engine's committed state.
type Snapshot struct {
	// Seq is the last applied sequence number; Applied counts applied
	// deltas over the engine's lifetime.
	Seq     uint64
	Applied uint64
	// Algorithm is the engine's configured dynamics.
	Algorithm Algorithm
	// Instance is a deep copy of the current instance.
	Instance *model.Instance
	// Assignment is a copy of the current equilibrium assignment.
	Assignment *model.Assignment
	// Summary holds the equilibrium payoff metrics.
	Summary payoff.Summary
	// Iterations, Converged and Potential report the committed dynamics
	// run, and Degraded its ladder rung if it was a degraded cold
	// fallback.
	Iterations int
	Converged  bool
	Potential  float64
	Degraded   string
}

// Engine holds a live equilibrium over a mutating FTA instance. It keeps
// the solver's warm structures — the VDPS candidate generator and the
// per-worker strategy spaces — and, per applied batch, repairs only what
// the deltas invalidated before replaying the seeded dynamics, instead of
// cold-solving O(W) strategy spaces per event.
//
// Apply is transactional: deltas are staged on a clone and committed only
// after a successful resolve, so a failed Apply leaves the previous
// equilibrium standing and consumes no sequence numbers. An Engine is not
// safe for concurrent use; callers (the HTTP server) serialize access.
type Engine struct {
	opt  Options
	inst *model.Instance
	// gen and strategies are the warm structures, bit-identical to what a
	// cold build over inst would produce; strategies is keyed by worker ID
	// because roster deltas shift instance indices.
	gen        *vdps.Generator
	strategies map[int][]vdps.StrategyRef
	// maxSize is the effective candidate size cap gen was generated with;
	// a roster delta that moves it forces a regeneration.
	maxSize int
	res     *game.Result
	// baseIters is the round count of the most recent random-init resolve,
	// the baseline continuation resolves report IterationsSaved against.
	baseIters int
	lastSeq   uint64
	applied   uint64
	// dirty marks the warm structures as diverged from inst (a failure
	// after in-place generator repair): the next batch regenerates them
	// before doing anything else.
	dirty bool
}

// New validates the instance, cold-solves it and returns an engine warmed
// with the solve's structures. An instance without workers is valid and
// yields an empty equilibrium.
func New(ctx context.Context, in *model.Instance, opt Options) (*Engine, error) {
	switch opt.Algorithm {
	case "":
		opt.Algorithm = FGT
	case FGT, IEGT:
	default:
		return nil, fmt.Errorf("stream: unknown algorithm %q", opt.Algorithm)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	e := &Engine{opt: opt, inst: in.Clone()}
	gen, err := vdps.GenerateContext(ctx, e.inst, opt.VDPS)
	if err != nil {
		return nil, err
	}
	state := game.NewState(gen)
	res, err := e.runDynamics(ctx, state, e.inst)
	if err != nil {
		return nil, err
	}
	e.gen = gen
	e.strategies = harvestStrategies(e.inst, state)
	e.res = res
	e.baseIters = res.Iterations
	e.maxSize = vdps.EffectiveMaxSize(e.inst, opt.VDPS)
	if m := opt.Metrics; m != nil {
		m.Seq.Set(float64(e.lastSeq))
	}
	return e, nil
}

// Apply applies one delta; see ApplyAll.
func (e *Engine) Apply(ctx context.Context, d Delta) (Result, error) {
	return e.ApplyAll(ctx, []Delta{d})
}

// ApplyAll stages the batch on a clone of the current instance, repairs the
// warm structures, replays the dynamics and commits — or rejects the whole
// batch with the engine untouched. Sequence numbers must be strictly
// increasing within the batch and across calls; rejected batches consume
// none. An empty batch is a no-op returning the standing equilibrium.
func (e *Engine) ApplyAll(ctx context.Context, ds []Delta) (Result, error) {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "stream.apply")
	defer sp.End()
	sp.SetAttrInt("deltas", len(ds))

	reject := func(err error) (Result, error) {
		if m := e.opt.Metrics; m != nil {
			m.Rejected.Inc()
		}
		return Result{}, err
	}

	last := e.lastSeq
	for i := range ds {
		if ds[i].Seq <= last {
			return reject(fmt.Errorf("%w: event %d after %d", ErrStaleSeq, ds[i].Seq, last))
		}
		last = ds[i].Seq
	}
	if err := fpApply.Hit(ctx); err != nil {
		return reject(fmt.Errorf("stream: apply: %w", err))
	}
	if len(ds) == 0 {
		res := e.result(Result{Seq: e.lastSeq, Resolve: ResolveNoop}, start)
		e.observe(res, nil, 0)
		return res, nil
	}

	staged := e.inst.Clone()
	var plan repairPlan
	for i := range ds {
		if err := applyDelta(staged, ds[i], &plan); err != nil {
			return reject(err)
		}
	}
	if err := staged.Validate(); err != nil {
		return reject(fmt.Errorf("stream: staged instance: %w", err))
	}

	rsp := sp.Child("stream.repair")
	rewardPoints, expiryPoints := plan.diff(staged)
	full := e.dirty
	if !full && plan.workersChanged && vdps.EffectiveMaxSize(staged, e.opt.VDPS) != e.maxSize {
		full = true
	}

	res := Result{Seq: last, Applied: len(ds)}
	departed := departedWorkers(e.strategies, staged)
	var (
		gen        *vdps.Generator
		strategies map[int][]vdps.StrategyRef
		ordered    [][]vdps.StrategyRef
		state      *game.State
		mutated    bool
	)
	switch {
	case full:
		// Roster-shape change moved the candidate size cap (or a previous
		// failure left the warm structures dirty): only a full candidate-DP
		// re-run covers every set size a worker could now ask for.
		res.Resolve = ResolveRegen
		res.WorkersTouched = len(staged.Workers) + departed
		var err error
		gen, err = vdps.GenerateContext(ctx, staged, e.opt.VDPS)
		if err != nil {
			rsp.End()
			return e.recover(ctx, sp, staged, ds, res, start, err, mutated)
		}
		state = game.NewState(gen)
		strategies = harvestStrategies(staged, state)
		ordered = state.Strategies

	case len(expiryPoints) > 0:
		// Incremental regen: a point's earliest expiry moved, invalidating
		// exactly the candidates containing that point. RepairExpiries
		// re-runs the DP restricted to those sets and splices the result
		// into the retained table bit-identically to a full re-run; only
		// workers referencing a dropped candidate, gaining a regenerated
		// one, or hit by a reward change get their strategy spaces rebuilt
		// or repaired — everyone else just has candidate indices remapped.
		res.Resolve = ResolveRegen
		gen = e.gen
		gen.Rebind(staged)
		if err := fpRepair.Hit(ctx); err != nil {
			rsp.End()
			return e.recover(ctx, sp, staged, ds, res, start, fmt.Errorf("stream: repair: %w", err), mutated)
		}
		rep, err := gen.RepairExpiries(ctx, expiryPoints)
		if err != nil {
			rsp.End()
			return e.recover(ctx, sp, staged, ds, res, start, err, mutated)
		}
		mutated = true
		rebuild := workersReferencing(e.strategies, rep.Dropped)
		for id, list := range e.strategies {
			if rebuild[id] {
				continue // stale indices; the list is replaced below anyway
			}
			for i := range list {
				list[i].Cand = int32(rep.Remap[list[i].Cand])
			}
		}
		for w := range staged.Workers {
			id := staged.Workers[w].ID
			if _, cached := e.strategies[id]; !cached || rebuild[id] {
				continue
			}
			for _, ci := range rep.Fresh {
				if gen.FeasibleFor(w, ci) {
					rebuild[id] = true
					break
				}
			}
		}
		var repaired map[int]bool
		var repriced []int
		if len(rewardPoints) > 0 {
			if repriced = gen.RepairRewards(rewardPoints); len(repriced) > 0 {
				repaired = workersReferencing(e.strategies, repriced)
			}
		}
		strategies = make(map[int][]vdps.StrategyRef, len(staged.Workers))
		ordered = make([][]vdps.StrategyRef, len(staged.Workers))
		var sc vdps.StrategyScratch
		for w := range staged.Workers {
			id := staged.Workers[w].ID
			s, cached := e.strategies[id]
			switch {
			case !cached || rebuild[id]:
				s = gen.WorkerStrategies(w, &sc)
				res.WorkersTouched++
			case repaired[id]:
				gen.RepairStrategyPayoffs(w, s, repriced, &sc)
				res.WorkersTouched++
			}
			strategies[id], ordered[w] = s, s
		}
		res.WorkersTouched += departed
		state = game.NewStateWithStrategies(gen, ordered)

	default:
		// Warm repair: rebind the generator to the staged instance, patch
		// candidate rewards in the cold accumulation order, and repair only
		// the strategy spaces the batch invalidated — new workers get a
		// fresh enumeration, workers referencing a re-priced candidate get
		// their cached lists re-keyed and re-sorted in place. Feasibility
		// is untouched by reward changes (it depends on expiries, which are
		// unchanged on this path), so every reused and repaired list is
		// bit-identical to a cold rebuild.
		gen = e.gen
		gen.Rebind(staged)
		var affected map[int]bool
		var repriced []int
		if len(rewardPoints) > 0 {
			repriced = gen.RepairRewards(rewardPoints)
			if len(repriced) > 0 {
				mutated = true
				affected = workersReferencing(e.strategies, repriced)
			}
		}
		if !mutated && !plan.workersChanged {
			// Nothing the game reads changed (e.g. a zero-reward arrival
			// above the point's earliest expiry): commit the instance and
			// keep the standing equilibrium.
			rsp.End()
			res.Resolve = ResolveNoop
			e.commit(staged, gen, e.strategies, e.res, last, len(ds))
			res = e.result(res, start)
			e.observe(res, ds, 0)
			return res, nil
		}
		res.Resolve = ResolveWarm
		strategies = make(map[int][]vdps.StrategyRef, len(staged.Workers))
		ordered = make([][]vdps.StrategyRef, len(staged.Workers))
		var sc vdps.StrategyScratch
		for w := range staged.Workers {
			id := staged.Workers[w].ID
			s, cached := e.strategies[id]
			switch {
			case !cached:
				s = gen.WorkerStrategies(w, &sc)
				res.WorkersTouched++
			case affected[id]:
				gen.RepairStrategyPayoffs(w, s, repriced, &sc)
				res.WorkersTouched++
			}
			strategies[id], ordered[w] = s, s
		}
		res.WorkersTouched += departed
		state = game.NewStateWithStrategies(gen, ordered)
	}
	rsp.End()

	vstart := time.Now()
	vsp := sp.Child("stream.resolve")
	if err := fpResolve.Hit(ctx); err != nil {
		vsp.End()
		return e.recover(ctx, sp, staged, ds, res, start, err, mutated)
	}
	var solved *game.Result
	var err error
	if e.opt.Continue && len(staged.Workers) > 0 {
		solved, err = e.continueDynamics(ctx, state, staged, gen, ordered, &res)
	} else {
		solved, err = e.runDynamics(ctx, state, staged)
	}
	vsp.End()
	if err != nil {
		if ctx.Err() != nil {
			if mutated {
				e.dirty = true
			}
			return Result{}, err
		}
		return e.recover(ctx, sp, staged, ds, res, start, err, mutated)
	}
	e.commit(staged, gen, strategies, solved, last, len(ds))
	if res.Resolve != ResolveContinuation {
		e.baseIters = solved.Iterations
	}
	res = e.result(res, start)
	e.observe(res, ds, time.Since(vstart))
	return res, nil
}

// Snapshot returns a self-consistent copy of the committed state. It never
// re-solves: the returned equilibrium is exactly what the last successful
// Apply (or New) committed.
func (e *Engine) Snapshot() Snapshot {
	sum := e.res.Summary
	sum.Payoffs = append([]float64(nil), sum.Payoffs...)
	return Snapshot{
		Seq:        e.lastSeq,
		Applied:    e.applied,
		Algorithm:  e.opt.Algorithm,
		Instance:   e.inst.Clone(),
		Assignment: e.res.Assignment.Clone(),
		Summary:    sum,
		Iterations: e.res.Iterations,
		Converged:  e.res.Converged,
		Potential:  e.res.Potential,
		Degraded:   e.res.Degraded,
	}
}

// recover serves the batch through an audited cold solve on the platform
// ladder after cause broke the warm path, then rebuilds the warm structures
// for subsequent batches. The committed result does not depend on those
// structures — every resolve replays the dynamics from scratch — so a
// failed rebuild only marks the engine dirty (forcing regeneration next
// batch) instead of failing the Apply.
func (e *Engine) recover(ctx context.Context, sp *obs.Span, staged *model.Instance, ds []Delta, res Result, start time.Time, cause error, mutated bool) (Result, error) {
	vstart := time.Now()
	csp := sp.Child("stream.cold")
	csp.SetAttr("cause", cause.Error())
	defer csp.End()
	solved, report, err := platform.SolveInstance(ctx, staged, dynamicsAssigner{e}, platform.Options{
		VDPS:     e.opt.VDPS,
		Recorder: e.opt.Recorder,
		Audit: &audit.Options{
			Fairness:      e.opt.Game.Fairness,
			UsePriorities: e.opt.Game.UsePriorities,
		},
		Retry:   e.opt.Retry,
		Degrade: e.opt.Degrade,
	})
	if err != nil {
		if mutated {
			e.dirty = true
		}
		if m := e.opt.Metrics; m != nil {
			m.Rejected.Inc()
		}
		return Result{}, fmt.Errorf("stream: cold fallback (after %v): %w", cause, err)
	}
	res.Resolve = ResolveCold
	res.WorkersTouched = len(staged.Workers) + departedWorkers(e.strategies, staged)
	res.Audit = report
	e.baseIters = solved.Iterations
	if gen, strategies, err := e.buildCaches(ctx, staged); err == nil {
		e.commit(staged, gen, strategies, solved, res.Seq, len(ds))
	} else {
		e.inst = staged
		e.res = solved
		e.lastSeq = res.Seq
		e.applied += uint64(len(ds))
		e.dirty = true
	}
	res = e.result(res, start)
	e.observe(res, ds, time.Since(vstart))
	return res, nil
}

// runDynamics replays the configured dynamics on a fresh state. A roster
// without workers yields the empty equilibrium instead of ErrNoWorkers,
// so an engine can drain to zero workers and refill.
func (e *Engine) runDynamics(ctx context.Context, s *game.State, in *model.Instance) (*game.Result, error) {
	if len(in.Workers) == 0 {
		return emptyResult(in), nil
	}
	if e.opt.Algorithm == IEGT {
		return evo.IEGTFromState(ctx, s, e.opt.Evo)
	}
	return game.FGTFromState(ctx, s, e.opt.Game)
}

// continueDynamics runs the dynamics seeded from the previous committed
// equilibrium and certifies the converged result with a mandatory audit
// pass (structure, deadlines, recomputed payoffs, NE/ESS certificate). A
// run that hits the iteration cap or fails its audit falls back to the
// default bit-pinned replay on a fresh state — exactly what a Continue-off
// engine would have run — so continuation can change latency and the
// reached equilibrium, never correctness.
func (e *Engine) continueDynamics(ctx context.Context, state *game.State, staged *model.Instance, gen *vdps.Generator, ordered [][]vdps.StrategyRef, res *Result) (*game.Result, error) {
	e.seedState(state, staged)
	var solved *game.Result
	var err error
	if e.opt.Algorithm == IEGT {
		solved, err = evo.IEGTFromSeededState(ctx, state, e.opt.Evo)
	} else {
		solved, err = game.FGTFromSeededState(ctx, state, e.opt.Game)
	}
	if err != nil {
		return nil, err
	}
	if solved.Converged {
		rep := audit.Run(staged, solved.Assignment, &solved.Summary, audit.Options{
			Generator:      gen,
			VDPS:           e.opt.VDPS,
			Fairness:       e.opt.Game.Fairness,
			EpsilonUtility: e.opt.Game.EpsilonUtility,
			UsePriorities:  e.opt.Game.UsePriorities,
			Algorithm:      string(e.opt.Algorithm),
			Converged:      solved.Converged,
		})
		if rep.OK() {
			res.Resolve = ResolveContinuation
			res.Audit = rep
			if saved := e.baseIters - solved.Iterations; saved > 0 {
				res.IterationsSaved = saved
			}
			return solved, nil
		}
	}
	if m := e.opt.Metrics; m != nil {
		m.ContinuationFallbacks.Inc()
	}
	return e.runDynamics(ctx, game.NewStateWithStrategies(gen, ordered), staged)
}

// seedState replays the previous committed equilibrium onto a fresh state:
// every staged worker whose previous route still exists in its (repaired)
// strategy space — matched by exact visiting sequence — starts there; new
// workers and workers whose route's candidate is gone start at Null.
// Previous routes are pairwise disjoint and worker IDs unique, so every
// matched strategy is available.
func (e *Engine) seedState(s *game.State, staged *model.Instance) {
	prev := make(map[int]model.Route, len(e.inst.Workers))
	for w := range e.inst.Workers {
		if r := e.res.Assignment.Routes[w]; len(r) > 0 {
			prev[e.inst.Workers[w].ID] = r
		}
	}
	for w := range staged.Workers {
		route, ok := prev[staged.Workers[w].ID]
		if !ok {
			continue
		}
		for si := range s.Strategies[w] {
			if routesEqual(s.StrategySeq(w, si), route) {
				if s.Available(w, si) {
					s.Switch(w, si)
				}
				break
			}
		}
	}
}

// routesEqual reports element-wise route equality.
func routesEqual(a, b model.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// departedWorkers counts cached workers absent from the staged roster —
// strategy spaces the batch drops, counted into WorkersTouched on every
// resolve path.
func departedWorkers(cache map[int][]vdps.StrategyRef, staged *model.Instance) int {
	present := make(map[int]bool, len(staged.Workers))
	for w := range staged.Workers {
		present[staged.Workers[w].ID] = true
	}
	n := 0
	for id := range cache {
		if !present[id] {
			n++
		}
	}
	return n
}

// buildCaches regenerates the warm structures for an instance without
// running dynamics.
func (e *Engine) buildCaches(ctx context.Context, in *model.Instance) (*vdps.Generator, map[int][]vdps.StrategyRef, error) {
	gen, err := vdps.GenerateContext(ctx, in, e.opt.VDPS)
	if err != nil {
		return nil, nil, err
	}
	return gen, harvestStrategies(in, game.NewState(gen)), nil
}

// commit installs the staged instance and its consistent warm structures.
func (e *Engine) commit(staged *model.Instance, gen *vdps.Generator, strategies map[int][]vdps.StrategyRef, res *game.Result, seq uint64, n int) {
	e.inst = staged
	e.gen = gen
	e.strategies = strategies
	e.res = res
	e.maxSize = vdps.EffectiveMaxSize(staged, e.opt.VDPS)
	e.lastSeq = seq
	e.applied += uint64(n)
	e.dirty = false
}

// result fills the committed-state fields of a Result.
func (e *Engine) result(r Result, start time.Time) Result {
	sum := e.res.Summary
	sum.Payoffs = append([]float64(nil), sum.Payoffs...)
	r.Summary = sum
	r.Iterations = e.res.Iterations
	r.Converged = e.res.Converged
	r.Degraded = e.res.Degraded
	r.Elapsed = time.Since(start)
	return r
}

// observe records the applied batch's metrics.
func (e *Engine) observe(r Result, ds []Delta, resolve time.Duration) {
	m := e.opt.Metrics
	if m == nil {
		return
	}
	for i := range ds {
		if c := m.DeltaCounter(string(ds[i].Kind)); c != nil {
			c.Inc()
		}
	}
	if c := m.ResolveCounter(r.Resolve); c != nil {
		c.Inc()
	}
	m.ApplySeconds.Observe(r.Elapsed.Seconds())
	if r.Resolve != ResolveNoop {
		m.ResolveSeconds.Observe(resolve.Seconds())
	}
	if r.Resolve == ResolveContinuation {
		m.IterationsSaved.Observe(float64(r.IterationsSaved))
	}
	m.WorkersTouched.Observe(float64(r.WorkersTouched))
	m.Seq.Set(float64(e.lastSeq))
}

// dynamicsAssigner adapts the engine's configured dynamics to the platform
// ladder's Assigner interface for cold fallbacks. Running the dynamics via
// the package-level entry points on a ladder-generated generator is
// bit-identical to the warm replay on repaired structures, so an exact-rung
// fallback changes availability, not results.
type dynamicsAssigner struct{ e *Engine }

// Name identifies the dynamics in solve telemetry.
func (a dynamicsAssigner) Name() string { return string(a.e.opt.Algorithm) }

// Assign solves the generator's instance with the engine's dynamics.
func (a dynamicsAssigner) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	if len(g.Instance().Workers) == 0 {
		return emptyResult(g.Instance()), nil
	}
	if a.e.opt.Algorithm == IEGT {
		return evo.IEGT(ctx, g, a.e.opt.Evo)
	}
	return game.FGT(ctx, g, a.e.opt.Game)
}

// harvestStrategies keys a state's strategy spaces by worker ID for the
// engine's roster-stable cache.
func harvestStrategies(in *model.Instance, s *game.State) map[int][]vdps.StrategyRef {
	m := make(map[int][]vdps.StrategyRef, len(in.Workers))
	for w := range in.Workers {
		m[in.Workers[w].ID] = s.Strategies[w]
	}
	return m
}

// workersReferencing returns the IDs of cached workers whose strategy lists
// reference any changed candidate. Reward repair cannot change a list's
// candidate membership (feasibility ignores rewards), so membership in the
// cached list is exactly the rebuild condition.
func workersReferencing(cache map[int][]vdps.StrategyRef, changed []int) map[int]bool {
	set := make(map[int32]bool, len(changed))
	for _, ci := range changed {
		set[int32(ci)] = true
	}
	out := make(map[int]bool)
	for id, list := range cache {
		for i := range list {
			if set[list[i].Cand] {
				out[id] = true
				break
			}
		}
	}
	return out
}

// emptyResult is the equilibrium of a workerless instance.
func emptyResult(in *model.Instance) *game.Result {
	a := model.NewAssignment(0)
	return &game.Result{Assignment: a, Summary: payoff.Summarize(in, a), Converged: true}
}
