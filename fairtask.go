// Package fairtask is a Go implementation of fairness-aware task assignment
// in spatial crowdsourcing, reproducing "Fairness-aware Task Assignment in
// Spatial Crowdsourcing: Game-Theoretic Approaches" (Zhao et al., ICDE 2021).
//
// The library models a delivery-logistics SC platform: a distribution center
// holds delivery points, each with expiring tasks; workers must first travel
// to the center and then visit a set of delivery points before the tasks
// expire. The Fairness-aware Task Assignment (FTA) problem asks for
// pairwise-disjoint Valid Delivery Point Sets (VDPSs), one per worker, that
// minimize the payoff difference between workers while keeping the average
// payoff high.
//
// Four algorithms are provided behind one interface:
//
//   - FGT  — the paper's Fairness-aware Game-Theoretic approach: best-response
//     dynamics under an inequity-aversion utility, reaching a pure Nash
//     equilibrium.
//   - IEGT — the paper's Improved Evolutionary Game-Theoretic approach:
//     replicator dynamics driving below-average workers to better strategies
//     until an evolutionary equilibrium.
//   - GTA  — greedy maximal-payoff baseline (no fairness).
//   - MPTA — maximal total payoff baseline (no fairness).
//
// # Quick start
//
//	inst, err := fairtask.GenerateGM(fairtask.GMConfig{Seed: 1})
//	if err != nil { ... }
//	res, err := fairtask.Solve(inst, fairtask.Options{Algorithm: fairtask.AlgIEGT})
//	if err != nil { ... }
//	fmt.Println(res.Summary.Difference, res.Summary.Average)
//
// Multi-center problems (fairtask.Problem) are solved per center in
// parallel with SolveProblem, and Simulate runs an epoch-based platform
// simulation with worker lifecycles and task expiry.
package fairtask

import (
	"context"
	"fmt"
	"io"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/audit"
	"fairtask/internal/dataset"
	"fairtask/internal/evo"
	"fairtask/internal/fairness"
	"fairtask/internal/fault"
	"fairtask/internal/game"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/online"
	"fairtask/internal/payoff"
	"fairtask/internal/platform"
	"fairtask/internal/render"
	"fairtask/internal/stream"
	"fairtask/internal/travel"
	"fairtask/internal/vdps"
)

// Domain types re-exported from the internal packages. These are aliases, so
// values flow freely between the public API and advanced internal use.
type (
	// Point is a 2D location in kilometres.
	Point = geo.Point
	// Task is a spatial delivery task (Definition 3).
	Task = model.Task
	// DeliveryPoint is a location with a set of tasks (Definition 2).
	DeliveryPoint = model.DeliveryPoint
	// Worker is a crowd worker (Definition 4).
	Worker = model.Worker
	// Instance is a single-distribution-center FTA problem.
	Instance = model.Instance
	// Problem is a multi-center FTA problem.
	Problem = model.Problem
	// Route is an ordered delivery point visiting sequence (Definition 5).
	Route = model.Route
	// Assignment maps workers to routes (Definition 8).
	Assignment = model.Assignment
	// Summary aggregates payoff metrics of an assignment.
	Summary = payoff.Summary
	// Result is the outcome of a solve: assignment, metrics, convergence.
	Result = game.Result
	// IterationStat is one round of a game-theoretic run (for convergence
	// studies, paper Figure 12).
	IterationStat = game.IterationStat
	// FairnessParams are the inequity-aversion weights alpha and beta.
	FairnessParams = fairness.Params
	// VDPSOptions configure Valid Delivery Point Set generation, including
	// the distance-constrained pruning threshold Epsilon.
	VDPSOptions = vdps.Options
	// SampleVDPSOptions configure the randomized candidate sampler used by
	// SolveSampled for large or unlimited maxDP instances.
	SampleVDPSOptions = vdps.SampleOptions
	// SYNConfig parameterizes the synthetic dataset generator (Table I).
	SYNConfig = dataset.SYNConfig
	// GMConfig parameterizes the gMission-style dataset generator.
	GMConfig = dataset.GMConfig
	// ArrivalConfig parameterizes the Poisson task-arrival process for
	// platform simulations.
	ArrivalConfig = dataset.ArrivalConfig
	// SimConfig parameterizes the epoch-based platform simulation.
	SimConfig = platform.SimConfig
	// SimReport is the outcome of a platform simulation.
	SimReport = platform.SimReport
	// EpochStats is one simulated round.
	EpochStats = platform.EpochStats
	// ProblemResult aggregates a multi-center solve.
	ProblemResult = platform.Result
	// Assigner is the common algorithm interface.
	Assigner = assign.Assigner
	// OnlineMatcher assigns tasks one at a time as they arrive (the
	// single-task assignment mode of paper §III).
	OnlineMatcher = online.Matcher
	// OnlineTask is one arriving task for the online matcher.
	OnlineTask = online.Task
	// OnlinePolicy selects the online matching rule.
	OnlinePolicy = online.Policy
	// OnlineReport summarizes an online matching run.
	OnlineReport = online.Report
	// TravelModel converts distances to travel times.
	TravelModel = travel.Model
	// Metric is a distance metric over points.
	Metric = geo.Metric
	// Euclidean is the straight-line metric used by the paper.
	Euclidean = geo.Euclidean
	// Manhattan is the L1 metric alternative.
	Manhattan = geo.Manhattan
	// Recorder receives telemetry events from the solve path (candidate
	// generation, per-iteration convergence, per-center solves, whole
	// assignments). Implementations must be concurrency-safe; nil disables
	// telemetry at no cost.
	Recorder = obs.Recorder
	// MetricsRegistry is a concurrency-safe registry of counters, gauges
	// and histograms with Prometheus text-format exposition.
	MetricsRegistry = obs.Registry
	// MetricsRecorder is a Recorder aggregating events into a
	// MetricsRegistry as Prometheus-style metrics.
	MetricsRecorder = obs.MetricsRecorder
	// VDPSEvent summarizes one candidate-generation run.
	VDPSEvent = obs.VDPSEvent
	// SolveEvent summarizes one completed single-center solve.
	SolveEvent = obs.SolveEvent
	// AssignEvent summarizes one completed multi-center assignment.
	AssignEvent = obs.AssignEvent
	// AuditReport is the outcome of an independent assignment audit: the
	// checks executed, the invariants violated, and the payoff summary the
	// auditor recomputed from scratch.
	AuditReport = audit.Report
	// AuditViolation is one broken invariant found by the auditor.
	AuditViolation = audit.Violation
	// AuditCheck identifies one audited invariant family.
	AuditCheck = audit.Check
	// AuditOptions configure an assignment audit.
	AuditOptions = audit.Options
	// AuditError is the error form of a failed audit; it carries the full
	// report and is returned (wrapped) by Solve* when Options.Audit is set
	// and a violation is found. Extract it with errors.As.
	AuditError = audit.Error
	// DegradeOptions configure the exact→sampled→greedy degradation ladder
	// for Options.Degrade: per-rung wall-clock budgets and the sampled
	// rungs' candidate generation.
	DegradeOptions = platform.Degrade
	// SolvePool is a shared long-lived worker pool for the batch throughput
	// mode: per-center solves of many concurrent assignments run on one
	// fixed set of goroutines (Options.Pool). Build with NewSolvePool.
	SolvePool = platform.Pool
	// ParallelMetrics bundles the fta_parallel_* instruments of the batch
	// throughput layer; build with NewParallelMetrics and pass to
	// NewSolvePool.
	ParallelMetrics = obs.ParallelMetrics
	// RetryPolicy configures Options.Retry: capped exponential backoff with
	// deterministic seeded jitter around each per-center solve attempt.
	RetryPolicy = fault.RetryPolicy
	// RetryError wraps the final error of an exhausted retry loop with the
	// number of attempts made. Extract it with errors.As.
	RetryError = fault.RetryError
	// Tracer records the hierarchical phase spans of one traced operation;
	// collect the finished tree with Tracer.Collect and export it with
	// WriteChromeTrace. See docs/OBSERVABILITY.md.
	Tracer = obs.Tracer
	// SpanTrace is one collected tree of spans (named to avoid clashing
	// with Options.Trace, the per-iteration convergence trace).
	SpanTrace = obs.Trace
	// Span is one timed phase of a traced operation. A nil *Span is a
	// no-op, so instrumented call sites cost a single pointer check when
	// tracing is disabled.
	Span = obs.Span
	// SpanRecord is the immutable record of one finished span.
	SpanRecord = obs.SpanRecord
	// StreamEngine maintains a standing equilibrium over a single-center
	// instance under a stream of deltas, repairing its candidate and
	// strategy structures incrementally instead of re-solving from scratch.
	// Build with NewStreamEngine; see docs/STREAMING.md.
	StreamEngine = stream.Engine
	// StreamOptions configure a StreamEngine: the dynamics replayed per
	// batch, continuation seeding, the cold-fallback ladder and telemetry.
	StreamOptions = stream.Options
	// StreamDelta is one stream event (task arrival/expiry, worker
	// churn, reprice) with a strictly increasing sequence number.
	StreamDelta = stream.Delta
	// StreamDeltaKind discriminates StreamDelta mutations.
	StreamDeltaKind = stream.Kind
	// StreamResult reports what one applied batch did to the engine:
	// resolve path, repair blast radius, committed metrics and — for
	// continuation resolves — the audit certificate and rounds saved.
	StreamResult = stream.Result
	// StreamSnapshot is a self-consistent copy of an engine's committed
	// state.
	StreamSnapshot = stream.Snapshot
	// StreamGenConfig parameterizes GenerateStreamDeltas, the seeded
	// Poisson delta-stream generator for benchmarks and experiments.
	StreamGenConfig = stream.StreamConfig
	// StreamMetrics bundles the fta_stream_* instrument families; build
	// with NewStreamMetrics and pass via StreamOptions.Metrics.
	StreamMetrics = obs.StreamMetrics
)

// Degradation-ladder rung names recorded in Result.Degraded and
// ProblemResult.Degraded; the exact rung is the empty string.
const (
	// RungSampled marks a result solved over sampled candidates after the
	// exact rung failed or exceeded its budget.
	RungSampled = platform.RungSampled
	// RungGreedy marks a last-resort greedy assignment over sampled
	// candidates.
	RungGreedy = platform.RungGreedy
)

// ErrFaultInjected is the sentinel wrapped by every failure a chaos-run
// failpoint injects; classify solve errors from chaos runs with
// errors.Is(err, ErrFaultInjected). See docs/RESILIENCE.md.
var ErrFaultInjected = fault.ErrInjected

// NoEpsilon selects the strict best response in Options.EpsilonUtility: a
// worker switches on any utility gain, however small. The zero value keeps
// the numerical default threshold, so "exactly zero" needs this sentinel.
const NoEpsilon = game.NoEpsilon

// Stream delta kinds — the wire grammar of the event-ingest API and the
// values of StreamDelta.Kind.
const (
	// StreamTaskArrived adds a task to an existing delivery point.
	StreamTaskArrived = stream.TaskArrived
	// StreamTaskExpired removes a task.
	StreamTaskExpired = stream.TaskExpired
	// StreamWorkerOnline adds a worker to the roster.
	StreamWorkerOnline = stream.WorkerOnline
	// StreamWorkerOffline removes a worker from the roster.
	StreamWorkerOffline = stream.WorkerOffline
	// StreamRewardChanged re-prices an existing task.
	StreamRewardChanged = stream.RewardChanged
)

// Resolve paths recorded in StreamResult.Resolve: how the engine
// re-established equilibrium after a batch.
const (
	// StreamResolveNoop kept the standing equilibrium untouched.
	StreamResolveNoop = stream.ResolveNoop
	// StreamResolveWarm repaired strategy spaces in place and replayed
	// the dynamics.
	StreamResolveWarm = stream.ResolveWarm
	// StreamResolveRegen re-ran (incrementally where possible) the
	// candidate DP before the replay.
	StreamResolveRegen = stream.ResolveRegen
	// StreamResolveCold served the batch by an audited cold solve.
	StreamResolveCold = stream.ResolveCold
	// StreamResolveContinuation seeded the dynamics from the previous
	// equilibrium, certified by a mandatory audit pass.
	StreamResolveContinuation = stream.ResolveContinuation
)

// ErrStreamStaleSeq rejects a delta whose sequence number is not strictly
// greater than the last applied one; classify StreamEngine.Apply errors
// with errors.Is.
var ErrStreamStaleSeq = stream.ErrStaleSeq

// NewStreamEngine cold-solves the instance once and returns the streaming
// engine that keeps its equilibrium standing under deltas. The instance is
// copied; later mutations of in do not affect the engine.
func NewStreamEngine(ctx context.Context, in *Instance, opt StreamOptions) (*StreamEngine, error) {
	return stream.New(ctx, in, opt)
}

// GenerateStreamDeltas builds a seeded random delta stream (Poisson
// arrivals, expiries, worker churn, reprices) against the instance, for
// benchmarks and experiments.
func GenerateStreamDeltas(in *Instance, cfg StreamGenConfig) ([]StreamDelta, error) {
	return stream.GenerateStream(in, cfg)
}

// ReplayStreamDeltas applies the deltas to the instance in order, mutating
// it in place — the defining semantics of the delta grammar, usable to
// reconstruct the instance a StreamEngine is standing on.
func ReplayStreamDeltas(in *Instance, ds ...StreamDelta) error {
	return stream.Replay(in, ds...)
}

// NewStreamMetrics registers the fta_stream_* instrument families on the
// registry for a StreamEngine's telemetry.
func NewStreamMetrics(reg *MetricsRegistry) *StreamMetrics {
	return obs.NewStreamMetrics(reg)
}

// NewSolvePool starts a shared solve pool with the given worker count
// (size <= 0 means runtime.GOMAXPROCS(0)); metrics may be nil. Pass the
// pool via Options.Pool on every solve and Close it at shutdown.
func NewSolvePool(size int, metrics *ParallelMetrics) *SolvePool {
	return platform.NewPool(size, metrics)
}

// NewParallelMetrics registers the fta_parallel_* instrument families on
// the registry for a SolvePool's telemetry.
func NewParallelMetrics(reg *MetricsRegistry) *ParallelMetrics {
	return obs.NewParallelMetrics(reg)
}

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsRecorder builds a MetricsRecorder over the registry,
// pre-registering the engine's fixed-name instruments.
func NewMetricsRecorder(reg *MetricsRegistry) *MetricsRecorder {
	return obs.NewMetricsRecorder(reg)
}

// NewTracer starts recording a new span trace. Derive the root span with
// Tracer.Root and hand it to the Solve*Context entry points via
// ContextWithSpan; solver phases (vdps.generate, state.build, round, audit,
// retry attempts, degradation rungs) nest under it automatically.
func NewTracer() *Tracer { return obs.NewTracer() }

// ContextWithSpan returns a context carrying sp as the active parent span.
// Pass it to SolveContext or SolveProblemContext to capture per-phase
// timings for that call.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return obs.ContextWithSpan(ctx, sp)
}

// WriteChromeTrace exports collected traces as Chrome trace_event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing and readable
// back with the fta trace subcommand.
func WriteChromeTrace(w io.Writer, traces ...SpanTrace) error {
	return obs.WriteChromeTrace(w, traces...)
}

// Online matching policies.
const (
	// OnlineGreedy assigns each arriving task to the worker that completes
	// it soonest.
	OnlineGreedy = online.Greedy
	// OnlineFairFirst assigns each arriving task to the feasible worker
	// with the lowest cumulative earnings rate.
	OnlineFairFirst = online.FairFirst
)

// NewOnlineMatcher builds an online single-task matcher over the instance's
// workers and travel model.
func NewOnlineMatcher(in *Instance, policy OnlinePolicy) (*OnlineMatcher, error) {
	return online.NewMatcher(in, policy)
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// NewTravelModel returns a travel model with the given metric (nil for
// Euclidean) and constant speed in km/h.
func NewTravelModel(m Metric, speed float64) (TravelModel, error) {
	return travel.NewModel(m, speed)
}

// DefaultFairness returns the paper's experimental IAU weights
// (alpha = beta = 0.5).
func DefaultFairness() FairnessParams { return fairness.DefaultParams() }

// Algorithm selects a task assignment method.
type Algorithm string

// The four algorithms evaluated in the paper.
const (
	// AlgGTA is the Greedy Task Assignment baseline.
	AlgGTA Algorithm = "GTA"
	// AlgMPTA is the Maximal Payoff based Task Assignment baseline.
	AlgMPTA Algorithm = "MPTA"
	// AlgFGT is the Fairness-aware Game-Theoretic approach.
	AlgFGT Algorithm = "FGT"
	// AlgIEGT is the Improved Evolutionary Game-Theoretic approach.
	AlgIEGT Algorithm = "IEGT"
	// AlgMMTA is the max-min fairness extension (not part of the paper's
	// evaluated set): it heuristically maximizes the minimum worker payoff.
	AlgMMTA Algorithm = "MMTA"
	// AlgLexifair is the exact lexicographic-minimax (leximin) extension:
	// it maximizes the smallest worker payoff, then the second smallest,
	// and so on — the egalitarian counterpart to the paper's
	// inequity-aversion game. See docs/ASSIGNERS.md.
	AlgLexifair Algorithm = "LEXIFAIR"
)

// Algorithms lists the paper's four evaluated methods in its presentation
// order. See ExtendedAlgorithms for the full set including extensions.
func Algorithms() []Algorithm {
	return []Algorithm{AlgMPTA, AlgGTA, AlgFGT, AlgIEGT}
}

// ExtendedAlgorithms lists every supported method, including the max-min
// and leximin fairness extensions.
func ExtendedAlgorithms() []Algorithm {
	return append(Algorithms(), AlgMMTA, AlgLexifair)
}

// Options configure Solve and SolveProblem.
type Options struct {
	// Algorithm picks the method; default AlgFGT.
	Algorithm Algorithm
	// VDPS configures candidate generation (Epsilon pruning, set size caps).
	VDPS VDPSOptions
	// Fairness holds the IAU weights for FGT; the zero value means
	// alpha = beta = 0.5.
	Fairness FairnessParams
	// MaxIterations caps game rounds for FGT/IEGT (0 = method default).
	MaxIterations int
	// Seed drives randomized initialization for FGT/IEGT.
	Seed int64
	// Trace records per-iteration statistics for FGT/IEGT.
	Trace bool
	// UsePriorities enables the priority-aware IAU extension in FGT.
	UsePriorities bool
	// EpsilonUtility is FGT's early-termination threshold on utility gains
	// (0 = numerical default; NoEpsilon = strict best response).
	EpsilonUtility float64
	// RandomOrder shuffles FGT's best-response visiting order each round
	// (default: fixed round-robin, as in the paper).
	RandomOrder bool
	// MutationRate lets IEGT explore a random available strategy with this
	// probability per below-average worker per round (0 = paper behaviour).
	MutationRate float64
	// MPTATopK and MPTANodeBudget tune the MPTA search (0 = defaults).
	MPTATopK       int
	MPTANodeBudget int
	// LexifairNodeBudget caps the LEXIFAIR level search (0 = solver
	// default); exhausting it degrades to the best bottleneck vector found
	// and reports Converged = false.
	LexifairNodeBudget int
	// Parallelism bounds concurrent per-center solves in SolveProblem.
	// Ignored when Pool is set.
	Parallelism int
	// SweepParallel sets the goroutine count for the deterministic
	// speculative best-response sweep inside a single FGT/IEGT solve:
	// quiescing rounds evaluate workers concurrently against the frozen
	// pre-round state and commit sequentially in the fixed visiting order,
	// keeping results bit-identical to the sequential sweep for the same
	// seed at any GOMAXPROCS. 0 or 1 disables. Distinct from Parallelism,
	// which fans whole centers out across goroutines.
	SweepParallel int
	// Pool runs per-center solves on a shared long-lived worker pool — the
	// batch throughput mode for serving many independent assignments
	// concurrently without per-solve goroutine churn. Build one with
	// NewSolvePool at startup and Close it at shutdown. Nil keeps the
	// per-call fan-out bounded by Parallelism.
	Pool *SolvePool
	// Recorder receives telemetry from candidate generation, game
	// iterations, and solves. Nil (the default) disables telemetry with no
	// measurable overhead.
	Recorder Recorder
	// Audit re-verifies every produced assignment with the independent
	// auditor (route structure, deadline feasibility, payoff summary, VDPS
	// membership, the equilibrium certificate for converged FGT/IEGT, and
	// the leximin certificate for converged LEXIFAIR). A violation fails the solve with an error wrapping
	// *AuditError. The solver's own candidate generator is reused, so the
	// overhead is one verification pass, not a second generation.
	Audit bool
	// Retry retries each per-center solve attempt (candidate generation +
	// solver run) under this policy — capped exponential backoff with
	// deterministic seeded jitter. Nil (the default) or MaxAttempts < 2
	// disables retrying; context cancellation is never retried.
	Retry *RetryPolicy
	// Degrade enables the exact→sampled→greedy degradation ladder: when the
	// exact solve fails or exceeds its budget, the solver re-runs over
	// sampled candidates, and as a last resort a greedy assignment over
	// sampled candidates is produced. The serving rung lands in
	// Result.Degraded; degraded results are always audited for the
	// structural guarantees before being accepted. Nil (the default) means
	// exact-only. See docs/RESILIENCE.md.
	Degrade *DegradeOptions
}

// NewAssigner returns the Assigner implementing opt.Algorithm.
func NewAssigner(opt Options) (Assigner, error) {
	switch opt.Algorithm {
	case AlgGTA:
		return assign.GTA{}, nil
	case AlgMPTA:
		return assign.MPTA{TopK: opt.MPTATopK, NodeBudget: opt.MPTANodeBudget}, nil
	case AlgFGT, "":
		return fgtAssigner{opt: opt}, nil
	case AlgIEGT:
		return iegtAssigner{opt: opt}, nil
	case AlgMMTA:
		return assign.MMTA{}, nil
	case AlgLexifair:
		return assign.Lexifair{NodeBudget: opt.LexifairNodeBudget}, nil
	default:
		return nil, fmt.Errorf("fairtask: unknown algorithm %q", opt.Algorithm)
	}
}

// fgtAssigner adapts game.FGT to the Assigner interface.
type fgtAssigner struct{ opt Options }

// Name implements Assigner.
func (fgtAssigner) Name() string { return string(AlgFGT) }

// Assign implements Assigner.
func (a fgtAssigner) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	return game.FGT(ctx, g, game.Options{
		Fairness:       a.opt.Fairness,
		MaxIterations:  a.opt.MaxIterations,
		Seed:           a.opt.Seed,
		EpsilonUtility: a.opt.EpsilonUtility,
		Parallel:       a.opt.SweepParallel,
		UsePriorities:  a.opt.UsePriorities,
		Trace:          a.opt.Trace,
		RandomOrder:    a.opt.RandomOrder,
		Recorder:       a.opt.Recorder,
	})
}

// iegtAssigner adapts evo.IEGT to the Assigner interface.
type iegtAssigner struct{ opt Options }

// Name implements Assigner.
func (iegtAssigner) Name() string { return string(AlgIEGT) }

// Assign implements Assigner.
func (a iegtAssigner) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	return evo.IEGT(ctx, g, evo.Options{
		MaxIterations: a.opt.MaxIterations,
		Seed:          a.opt.Seed,
		Parallel:      a.opt.SweepParallel,
		Trace:         a.opt.Trace,
		MutationRate:  a.opt.MutationRate,
		Recorder:      a.opt.Recorder,
	})
}

// Solve runs the selected algorithm on a single-center instance: it
// generates the VDPS candidates and computes the assignment.
func Solve(in *Instance, opt Options) (*Result, error) {
	return SolveContext(context.Background(), in, opt)
}

// SolveContext is Solve with cancellation: candidate generation and the
// solver both observe ctx at their iteration boundaries, so a canceled
// context (client disconnect, job deadline) stops the solve early with
// ctx.Err() instead of running to MaxIterations.
func SolveContext(ctx context.Context, in *Instance, opt Options) (*Result, error) {
	solver, err := NewAssigner(opt)
	if err != nil {
		return nil, err
	}
	res, rep, err := platform.SolveInstance(ctx, in, solver, platformOptions(opt))
	if err != nil {
		return nil, err
	}
	if opt.Audit && rep != nil && !rep.OK() {
		return nil, fmt.Errorf("fairtask: %s solve failed verification: %w", solver.Name(), rep.Err())
	}
	return res, nil
}

// platformOptions derives the platform-layer configuration from the public
// options.
func platformOptions(opt Options) platform.Options {
	popt := platform.Options{
		VDPS:        opt.VDPS,
		Parallelism: opt.Parallelism,
		Pool:        opt.Pool,
		Recorder:    opt.Recorder,
		Retry:       opt.Retry,
		Degrade:     opt.Degrade,
	}
	if opt.Audit {
		aopt := auditOptions(opt)
		popt.Audit = &aopt
	}
	return popt
}

// auditResult runs the independent auditor over a solve result when
// Options.Audit is set, reusing the solve's candidate generator. A violation
// fails the solve with the wrapped *AuditError.
func auditResult(in *Instance, g *vdps.Generator, algorithm string, res *Result, opt Options) error {
	if !opt.Audit {
		return nil
	}
	aopt := auditOptions(opt)
	aopt.Generator = g
	aopt.Algorithm = algorithm
	aopt.Converged = res.Converged
	if rep := audit.Run(in, res.Assignment, &res.Summary, aopt); !rep.OK() {
		return fmt.Errorf("fairtask: %s solve failed verification: %w", algorithm, rep.Err())
	}
	return nil
}

// auditOptions derives the audit configuration matching a solve's options.
func auditOptions(opt Options) AuditOptions {
	return AuditOptions{
		VDPS:           opt.VDPS,
		Fairness:       opt.Fairness,
		EpsilonUtility: opt.EpsilonUtility,
		UsePriorities:  opt.UsePriorities,
	}
}

// Audit independently re-verifies an assignment against an instance: route
// structure, deadline feasibility, the reported payoff summary (nil sum
// skips the comparison), VDPS membership, and the equilibrium certificate
// for converged FGT/IEGT results (see AuditOptions). The report lists every
// violated invariant; Report.Err() converts it to an error.
func Audit(in *Instance, a *Assignment, sum *Summary, opt AuditOptions) *AuditReport {
	return audit.Run(in, a, sum, opt)
}

// assignRecorded runs the solver and emits a SolveEvent on success.
func assignRecorded(ctx context.Context, in *Instance, g *vdps.Generator, solver Assigner, rec Recorder) (*Result, error) {
	start := time.Now()
	res, err := solver.Assign(ctx, g)
	if err == nil && rec != nil {
		rec.RecordSolve(obs.SolveEvent{
			Algorithm:  solver.Name(),
			CenterID:   in.CenterID,
			Workers:    len(in.Workers),
			Points:     len(in.Points),
			Iterations: res.Iterations,
			Converged:  res.Converged,
			Elapsed:    time.Since(start),
		})
	}
	return res, err
}

// SolveSampled is Solve with sampled candidate generation instead of the
// exact subset dynamic program: randomized greedy route growth makes large
// or unlimited-maxDP instances tractable at the cost of completeness (see
// the vdps package documentation). opt.VDPS is ignored.
func SolveSampled(in *Instance, sample SampleVDPSOptions, opt Options) (*Result, error) {
	return SolveSampledContext(context.Background(), in, sample, opt)
}

// SolveSampledContext is SolveSampled with cancellation, mirroring
// SolveContext.
func SolveSampledContext(ctx context.Context, in *Instance, sample SampleVDPSOptions, opt Options) (*Result, error) {
	solver, err := NewAssigner(opt)
	if err != nil {
		return nil, err
	}
	if sample.Recorder == nil {
		sample.Recorder = opt.Recorder
	}
	g, err := vdps.GenerateSampledContext(ctx, in, sample)
	if err != nil {
		return nil, err
	}
	res, err := assignRecorded(ctx, in, g, solver, opt.Recorder)
	if err != nil {
		return nil, err
	}
	if err := auditResult(in, g, solver.Name(), res, opt); err != nil {
		return nil, err
	}
	return res, nil
}

// SolveProblem runs the selected algorithm over every center of a
// multi-center problem in parallel and aggregates the metrics over the full
// worker population.
func SolveProblem(p *Problem, opt Options) (*ProblemResult, error) {
	return SolveProblemContext(context.Background(), p, opt)
}

// SolveProblemContext is SolveProblem with cancellation: centers not yet
// started when ctx is done are skipped and the context error is returned.
func SolveProblemContext(ctx context.Context, p *Problem, opt Options) (*ProblemResult, error) {
	solver, err := NewAssigner(opt)
	if err != nil {
		return nil, err
	}
	res, err := platform.AssignContext(ctx, p, solver, platformOptions(opt))
	if err != nil {
		return nil, err
	}
	if opt.Audit {
		if aerr := res.AuditErr(p); aerr != nil {
			return nil, fmt.Errorf("fairtask: %s solve failed verification: %w", solver.Name(), aerr)
		}
	}
	return res, nil
}

// Simulate runs the epoch-based platform simulation (worker lifecycles,
// task expiry, optional task arrivals) over the problem.
func Simulate(p *Problem, cfg SimConfig) (*SimReport, error) {
	return platform.Simulate(p, cfg)
}

// VerifyNashEquilibrium checks that an assignment is a pure Nash
// equilibrium of the FTA game on the instance (Algorithm 2's termination
// certificate): it regenerates the VDPS candidates with opt.VDPS and
// confirms no worker has an available strategy with higher IAU. A nil
// return means the assignment is an equilibrium.
func VerifyNashEquilibrium(in *Instance, a *Assignment, opt Options) error {
	g, err := vdps.Generate(in, opt.VDPS)
	if err != nil {
		return err
	}
	return game.VerifyNE(g, a, opt.Fairness, opt.EpsilonUtility)
}

// VerifyEvolutionaryEquilibrium checks Algorithm 3's improved evolutionary
// stable state for an assignment: no below-average worker can still switch
// to an available higher-payoff strategy.
func VerifyEvolutionaryEquilibrium(in *Instance, a *Assignment, opt Options) error {
	g, err := vdps.Generate(in, opt.VDPS)
	if err != nil {
		return err
	}
	return evo.VerifyEquilibrium(g, a)
}

// Summarize computes the payoff metrics of an assignment for an instance.
func Summarize(in *Instance, a *Assignment) Summary {
	return payoff.Summarize(in, a)
}

// PayoffDifference returns P_dif (Equation 2) over a payoff vector.
func PayoffDifference(payoffs []float64) float64 {
	return payoff.Difference(payoffs)
}

// AveragePayoff returns the mean of a payoff vector.
func AveragePayoff(payoffs []float64) float64 {
	return payoff.Average(payoffs)
}

// Gini returns the Gini coefficient of a payoff vector (0 = perfectly
// equal), an alternative descriptive fairness measure.
func Gini(payoffs []float64) float64 { return payoff.Gini(payoffs) }

// JainIndex returns Jain's fairness index of a payoff vector (1 = perfectly
// equal, 1/n = maximally concentrated).
func JainIndex(payoffs []float64) float64 { return payoff.JainIndex(payoffs) }

// MinPayoff returns the smallest payoff — the max-min fairness objective.
func MinPayoff(payoffs []float64) float64 { return payoff.MinPayoff(payoffs) }

// PayoffQuantile returns the q-quantile of a payoff vector with linear
// interpolation.
func PayoffQuantile(payoffs []float64, q float64) float64 {
	return payoff.Quantile(payoffs, q)
}

// LorenzPoint is one point of a Lorenz curve.
type LorenzPoint = payoff.LorenzPoint

// LorenzCurve returns the Lorenz curve of a payoff vector, from (0,0) to
// (1,1) — the cumulative payoff share held by the poorest fraction of
// workers.
func LorenzCurve(payoffs []float64) []LorenzPoint {
	return payoff.Lorenz(payoffs)
}

// GenerateSYN builds the synthetic multi-center dataset of §VII-A (Table I
// defaults for zero fields).
func GenerateSYN(cfg SYNConfig) (*Problem, error) {
	return dataset.GenerateSYN(cfg)
}

// GenerateGM builds the single-center gMission-style dataset: clustered
// tasks, centroid center, k-means delivery points.
func GenerateGM(cfg GMConfig) (*Instance, error) {
	return dataset.GenerateGM(cfg)
}

// GMissionOptions configure LoadGMission.
type GMissionOptions = dataset.GMissionOptions

// LoadGMission builds an instance from raw gMission-format CSV exports
// (tasks: "id,x,y,expiry,reward"; workers: "id,x,y,maxdp"), applying the
// paper's preprocessing: centroid distribution center and k-means delivery
// points. Use this when you have the real dataset; GenerateGM provides the
// synthetic stand-in otherwise.
func LoadGMission(tasks, workers io.Reader, opt GMissionOptions) (*Instance, error) {
	return dataset.LoadGMission(tasks, workers, opt)
}

// NewPoissonArrivals returns a SimConfig.TaskSource that injects a Poisson
// number of fresh tasks per delivery point each epoch.
func NewPoissonArrivals(cfg ArrivalConfig) func(epoch int, now float64, p *Problem) {
	return dataset.NewPoissonArrivals(cfg)
}

// RushHourProfile is a bimodal daily demand multiplier (peaks ~08:00 and
// ~18:00) for ArrivalConfig.RateProfile.
func RushHourProfile(now float64) float64 { return dataset.RushHourProfile(now) }

// InstanceStats summarizes an instance's shape (counts, density, deadline
// tightness, worker geometry).
type InstanceStats = model.InstanceStats

// WriteCSV persists a problem in the library's CSV schema.
func WriteCSV(w io.Writer, p *Problem) error { return dataset.WriteCSV(w, p) }

// ReadCSV loads a problem previously written with WriteCSV.
func ReadCSV(r io.Reader) (*Problem, error) { return dataset.ReadCSV(r) }

// RenderOptions configure RenderSVG.
type RenderOptions = render.Options

// RenderSVG draws an instance — and, when a is non-nil, its routes — as a
// standalone SVG document.
func RenderSVG(w io.Writer, in *Instance, a *Assignment, opt RenderOptions) error {
	return render.SVG(w, in, a, opt)
}

// WriteAssignmentCSV exports per-center assignments as a flat route CSV
// (one row per visited delivery point) for downstream dispatch tooling.
// assignments must be indexed like p.Instances; nil entries are skipped.
func WriteAssignmentCSV(w io.Writer, p *Problem, assignments []*Assignment) error {
	return dataset.WriteAssignmentCSV(w, p, assignments)
}

// ReadAssignmentCSV parses a WriteAssignmentCSV export back into per-center
// assignments indexed like p.Instances, resolving IDs against the problem.
// Pair with Audit to re-verify a persisted assignment.
func ReadAssignmentCSV(r io.Reader, p *Problem) ([]*Assignment, error) {
	return dataset.ReadAssignmentCSV(r, p)
}
