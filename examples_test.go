package fairtask_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun builds and executes every example binary, asserting each
// exits cleanly and prints something. Skipped under -short (it shells out
// to the Go toolchain).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs example binaries")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least 3 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				cmd.Process.Kill()
				t.Fatal("example timed out")
			}
			if runErr != nil {
				t.Fatalf("run failed: %v\n%s", runErr, out)
			}
			if len(out) == 0 {
				t.Error("example printed nothing")
			}
		})
	}
}
