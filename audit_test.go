package fairtask_test

import (
	"bytes"
	"errors"
	"testing"

	"fairtask"
)

// TestSolveWithAudit runs every algorithm with the audit gate on: a clean
// solve must succeed unchanged.
func TestSolveWithAudit(t *testing.T) {
	in := gmInstance(t)
	for _, alg := range fairtask.Algorithms() {
		res, err := fairtask.Solve(in, fairtask.Options{Algorithm: alg, Seed: 3, Audit: true})
		if err != nil {
			t.Fatalf("%s with audit: %v", alg, err)
		}
		if res.Assignment == nil {
			t.Fatalf("%s: no assignment", alg)
		}
	}
}

func TestSolveProblemWithAudit(t *testing.T) {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 5, Centers: 2, Tasks: 40, Workers: 8, DeliveryPoints: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fairtask.SolveProblem(p, fairtask.Options{Algorithm: fairtask.AlgFGT, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCenter) != 2 {
		t.Fatalf("solved %d centers, want 2", len(res.PerCenter))
	}
}

// TestAuditRejectsTamperedResult corrupts a solved assignment and checks the
// public Audit entry point reports it, with the error carrying the report.
func TestAuditRejectsTamperedResult(t *testing.T) {
	in := gmInstance(t)
	res, err := fairtask.Solve(in, fairtask.Options{Algorithm: fairtask.AlgMPTA})
	if err != nil {
		t.Fatal(err)
	}
	// Claim a different payoff total than the routes produce.
	bad := res.Summary
	bad.Average *= 3
	rep := fairtask.Audit(in, res.Assignment, &bad, fairtask.AuditOptions{})
	if rep.OK() {
		t.Fatal("audit accepted a tampered summary")
	}
	var aerr *fairtask.AuditError
	if !errors.As(rep.Err(), &aerr) {
		t.Fatalf("Err() = %T, want *AuditError", rep.Err())
	}
	if aerr.Report != rep {
		t.Error("AuditError does not carry its report")
	}
}

// TestReadAssignmentCSVPublic round-trips an assignment export through the
// public wrappers.
func TestReadAssignmentCSVPublic(t *testing.T) {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 9, Centers: 1, Tasks: 20, Workers: 4, DeliveryPoints: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fairtask.SolveProblem(p, fairtask.Options{Algorithm: fairtask.AlgGTA})
	if err != nil {
		t.Fatal(err)
	}
	assignments := make([]*fairtask.Assignment, len(res.PerCenter))
	for i, r := range res.PerCenter {
		assignments[i] = r.Assignment
	}
	var buf bytes.Buffer
	if err := fairtask.WriteAssignmentCSV(&buf, p, assignments); err != nil {
		t.Fatal(err)
	}
	got, err := fairtask.ReadAssignmentCSV(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	rep := fairtask.Audit(&p.Instances[0], got[0], nil, fairtask.AuditOptions{})
	if !rep.OK() {
		t.Errorf("round-tripped assignment failed audit: %v", rep.Violations)
	}
	if rep.Recomputed.Assigned != res.PerCenter[0].Summary.Assigned {
		t.Errorf("recomputed %d assigned, want %d",
			rep.Recomputed.Assigned, res.PerCenter[0].Summary.Assigned)
	}
}
